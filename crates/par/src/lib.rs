//! Deterministic scoped worker pool for embarrassingly parallel
//! measurement campaigns.
//!
//! The paper's protocol fans naturally: 50 (plaintext, key) pairs × 10
//! sweep repetitions for the delay fingerprint, ×1000 averaged EM traces
//! per acquisition, and whole die populations for the inter-die studies.
//! This crate provides the one primitive the measurement engine needs —
//! an order-preserving `parallel_map` built on [`std::thread::scope`] —
//! with a hard guarantee: **the output is a pure function of the input**,
//! bit-identical for every worker count (including 1). Parallelism only
//! changes *when* each item runs, never *what* it computes or where its
//! result lands, so campaign results cannot drift with core count.
//!
//! Scheduling is a shared [`AtomicUsize`] index dispenser: workers pull
//! the next unclaimed item, compute `f(index, item)`, and stash the
//! result at `index` in their local batch. After the scope joins, batches
//! are merged by index into a single `Vec` in input order. A worker panic
//! propagates out of [`parallel_map`] after the scope unwinds, like the
//! panic of a plain serial loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker count to an actual one.
///
/// `0` means "auto": the `HTD_WORKERS` environment variable if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// Any explicit positive request is honoured as-is (it may exceed the
/// core count; determinism makes oversubscription harmless).
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("HTD_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items`, returning results in input
/// order, using up to `workers` threads (`0` = auto, see
/// [`resolve_workers`]).
///
/// `f` receives `(index, &item)` so callers can derive per-item seeds
/// from the stable index. Output is bit-identical for every worker
/// count.
pub fn parallel_map<'s, T, U, F>(workers: usize, items: &'s [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &'s T) -> U + Sync,
{
    parallel_map_indexed(workers, items.len(), |i| f(i, &items[i]))
}

/// How one fan's items were distributed over pool slots.
///
/// The *shape* (`workers`, `per_worker.len()`, the sum of `per_worker`)
/// is deterministic, but which slot claimed which item is pure
/// scheduling — treat the per-slot counts as observational data for
/// occupancy dashboards, never as campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// The resolved worker count this fan ran with.
    pub workers: usize,
    /// Items completed by each worker slot (sums to the fan's `n`).
    pub per_worker: Vec<u64>,
}

/// Applies `f` to every index in `0..n`, returning results in index
/// order, using up to `workers` threads (`0` = auto).
///
/// The index-only form of [`parallel_map`], for callers that fan over a
/// cartesian product (e.g. pair × repetition) without materialising it.
pub fn parallel_map_indexed<U, F>(workers: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    parallel_map_indexed_stats(workers, n, f).0
}

/// [`parallel_map_indexed`] that also reports how the fan was scheduled.
///
/// The result `Vec` is bit-identical to the plain form; the extra
/// [`PoolStats`] is observational (see its docs).
pub fn parallel_map_indexed_stats<U, F>(workers: usize, n: usize, f: F) -> (Vec<U>, PoolStats)
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = resolve_workers(workers).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let out: Vec<U> = (0..n).map(f).collect();
        let stats = PoolStats {
            workers: 1,
            per_worker: vec![n as u64],
        };
        return (out, stats);
    }

    let next = AtomicUsize::new(0);
    let mut batches: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(batch) => batch,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let per_worker: Vec<u64> = batches.iter().map(|b| b.len() as u64).collect();

    // Merge the batches back into input order. Every index appears
    // exactly once across all batches.
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for batch in &mut batches {
        for (i, value) in batch.drain(..) {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(value);
        }
    }
    let out = out
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect();
    (
        out,
        PoolStats {
            workers,
            per_worker,
        },
    )
}

/// Fallible form of [`parallel_map_indexed`]: applies `f` to every index
/// and short-circuits the *collection* on error — every item still runs,
/// but the returned error is always the one with the **lowest index**,
/// independent of which worker hit it first. That keeps error reporting
/// as deterministic as the success path: a campaign that fails under 8
/// workers names the same offending item as under 1.
///
/// # Errors
///
/// The lowest-index `Err` produced by `f`, if any.
pub fn parallel_try_map_indexed<U, E, F>(workers: usize, n: usize, f: F) -> Result<Vec<U>, E>
where
    U: Send,
    E: Send,
    F: Fn(usize) -> Result<U, E> + Sync,
{
    parallel_map_indexed(workers, n, f).into_iter().collect()
}

/// [`parallel_try_map_indexed`] that also reports how the fan was
/// scheduled. The [`PoolStats`] covers every item (all of them run even
/// when some fail), so occupancy accounting stays complete on the error
/// path.
///
/// # Errors
///
/// The lowest-index `Err` produced by `f`, if any.
pub fn parallel_try_map_indexed_stats<U, E, F>(
    workers: usize,
    n: usize,
    f: F,
) -> (Result<Vec<U>, E>, PoolStats)
where
    U: Send,
    E: Send,
    F: Fn(usize) -> Result<U, E> + Sync,
{
    let (results, stats) = parallel_map_indexed_stats(workers, n, f);
    (results.into_iter().collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(7, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn identical_across_worker_counts() {
        let items: Vec<u64> = (0..257).collect();
        let reference = parallel_map(1, &items, |i, &x| x.wrapping_mul(i as u64 + 1));
        for workers in [2, 3, 4, 8, 16] {
            let got = parallel_map(workers, &items, |i, &x| x.wrapping_mul(i as u64 + 1));
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[42u32], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn indexed_form_covers_all_indices() {
        let out = parallel_map_indexed(5, 100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = parallel_map_indexed(64, 3, |i| i + 10);
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    fn explicit_worker_request_is_honoured() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn try_map_reports_the_lowest_index_error_at_any_worker_count() {
        for workers in [1, 2, 8] {
            let err =
                parallel_try_map_indexed(
                    workers,
                    100,
                    |i| {
                        if i % 37 == 5 {
                            Err(i)
                        } else {
                            Ok(i)
                        }
                    },
                )
                .unwrap_err();
            assert_eq!(err, 5, "workers = {workers}");
        }
        let ok: Result<Vec<usize>, usize> = parallel_try_map_indexed(4, 10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_stats_account_for_every_item() {
        for (workers, n) in [(1, 10), (4, 100), (8, 3), (3, 0)] {
            let (out, stats) = parallel_map_indexed_stats(workers, n, |i| i);
            assert_eq!(out, (0..n).collect::<Vec<_>>());
            assert!(stats.workers >= 1);
            assert_eq!(stats.per_worker.len(), stats.workers);
            let total: u64 = stats.per_worker.iter().sum();
            assert_eq!(total, n as u64, "workers = {workers}, n = {n}");
        }
    }

    #[test]
    fn try_map_stats_cover_failed_fans_too() {
        let (result, stats) =
            parallel_try_map_indexed_stats(4, 50, |i| if i == 9 { Err(i) } else { Ok(i) });
        assert_eq!(result.unwrap_err(), 9);
        let total: u64 = stats.per_worker.iter().sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(4, 16, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
