//! The device grid: slices, sites and coordinates.

use std::fmt;

/// LUT sites per slice (Virtex-5: four 6-input LUTs).
pub const LUTS_PER_SLICE: usize = 4;

/// Flip-flop sites per slice (Virtex-5: four).
pub const FFS_PER_SLICE: usize = 4;

/// Dimensions of a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceConfig {
    cols: u16,
    rows: u16,
}

impl DeviceConfig {
    /// A device with `cols × rows` slices.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "device must have at least one slice");
        DeviceConfig { cols, rows }
    }

    /// A scaled-down stand-in for the paper's Virtex-5 LX30: 1 040 slices
    /// (26 × 40), sized so the suite's AES-128 occupies ≈ 38 % of the
    /// slices like the authors' implementation did (Section II-B).
    pub fn virtex5_lx30_scaled() -> Self {
        DeviceConfig::new(26, 40)
    }

    /// Columns of slices.
    pub fn cols(self) -> u16 {
        self.cols
    }

    /// Rows of slices.
    pub fn rows(self) -> u16 {
        self.rows
    }
}

/// Slice coordinates: `x` is the column, `y` the row, both zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceCoord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl SliceCoord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        SliceCoord { x, y }
    }

    /// Manhattan distance to `other`, in slice pitches.
    pub fn manhattan(self, other: SliceCoord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Euclidean distance to `other`, in slice pitches.
    pub fn euclidean(self, other: SliceCoord) -> f64 {
        let dx = self.x as f64 - other.x as f64;
        let dy = self.y as f64 - other.y as f64;
        (dx * dx + dy * dy).sqrt()
    }

    /// Slice centre in slice-pitch units (for probe/field geometry).
    pub fn center(self) -> (f64, f64) {
        (self.x as f64 + 0.5, self.y as f64 + 0.5)
    }
}

impl fmt::Display for SliceCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SLICE_X{}Y{}", self.x, self.y)
    }
}

/// Whether a site holds a LUT or a flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A 6-input LUT site.
    Lut,
    /// A flip-flop site.
    Ff,
}

/// One placeable site: a LUT or FF position inside a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Site {
    /// The slice holding the site.
    pub slice: SliceCoord,
    /// LUT or FF.
    pub kind: SiteKind,
    /// Position within the slice (`0..4`).
    pub index: u8,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            SiteKind::Lut => "LUT",
            SiteKind::Ff => "FF",
        };
        write!(f, "{}.{}{}", self.slice, k, self.index)
    }
}

/// A rectangular FPGA fabric of slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    config: DeviceConfig,
}

impl Device {
    /// Creates a device of the given dimensions.
    pub fn new(config: DeviceConfig) -> Self {
        Device { config }
    }

    /// The device dimensions.
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// Total slices on the device.
    pub fn slice_count(&self) -> usize {
        self.config.cols as usize * self.config.rows as usize
    }

    /// Total LUT sites.
    pub fn lut_site_count(&self) -> usize {
        self.slice_count() * LUTS_PER_SLICE
    }

    /// Total flip-flop sites.
    pub fn ff_site_count(&self) -> usize {
        self.slice_count() * FFS_PER_SLICE
    }

    /// Whether `coord` lies on the device.
    pub fn contains(&self, coord: SliceCoord) -> bool {
        coord.x < self.config.cols && coord.y < self.config.rows
    }

    /// Dense index of a slice (row-major), for per-slice side tables.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the device.
    pub fn slice_index(&self, coord: SliceCoord) -> usize {
        assert!(self.contains(coord), "slice {coord} outside device");
        coord.y as usize * self.config.cols as usize + coord.x as usize
    }

    /// The slice at dense index `i` (inverse of [`Device::slice_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= slice_count()`.
    pub fn slice_at(&self, i: usize) -> SliceCoord {
        assert!(i < self.slice_count());
        SliceCoord::new(
            (i % self.config.cols as usize) as u16,
            (i / self.config.cols as usize) as u16,
        )
    }

    /// Iterates over every slice coordinate, row-major.
    pub fn slices(&self) -> impl Iterator<Item = SliceCoord> + '_ {
        (0..self.slice_count()).map(|i| self.slice_at(i))
    }

    /// Geometric centre of the die, in slice-pitch units.
    pub fn center(&self) -> (f64, f64) {
        (self.config.cols as f64 / 2.0, self.config.rows as f64 / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_indexing_roundtrip() {
        let d = Device::new(DeviceConfig::new(3, 5));
        assert_eq!(d.slice_count(), 15);
        assert_eq!(d.lut_site_count(), 60);
        assert_eq!(d.ff_site_count(), 60);
        for i in 0..d.slice_count() {
            assert_eq!(d.slice_index(d.slice_at(i)), i);
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let d = Device::new(DeviceConfig::new(3, 5));
        assert!(d.contains(SliceCoord::new(2, 4)));
        assert!(!d.contains(SliceCoord::new(3, 0)));
        assert!(!d.contains(SliceCoord::new(0, 5)));
    }

    #[test]
    fn distances() {
        let a = SliceCoord::new(1, 1);
        let b = SliceCoord::new(4, 5);
        assert_eq!(a.manhattan(b), 7);
        assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.center(), (1.5, 1.5));
    }

    #[test]
    fn display_names_look_like_xilinx() {
        assert_eq!(SliceCoord::new(2, 7).to_string(), "SLICE_X2Y7");
        let s = Site {
            slice: SliceCoord::new(0, 0),
            kind: SiteKind::Lut,
            index: 3,
        };
        assert_eq!(s.to_string(), "SLICE_X0Y0.LUT3");
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_dimension_is_rejected() {
        DeviceConfig::new(0, 4);
    }

    #[test]
    fn scaled_lx30_has_about_a_thousand_slices() {
        let d = Device::new(DeviceConfig::virtex5_lx30_scaled());
        assert_eq!(d.slice_count(), 1040);
    }
}
