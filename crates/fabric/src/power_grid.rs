//! The shared power-distribution-network coupling model.
//!
//! Section III-B of the paper explains why a dormant trojan is visible at
//! all: *"Even if no logical connection exists between the design and the
//! HT, both share the same power grid inside the FPGA. These electric
//! connections make the HT detection easier."* This module models that
//! medium: additional load connected to the grid at one slice perturbs the
//! supply seen by nearby slices, with a magnitude decaying with distance.

use crate::device::SliceCoord;

/// Distance-decaying coupling through the shared power grid.
///
/// The kernel is a Lorentzian `1 / (1 + (d/λ)²)` in Euclidean slice
/// distance `d`, which captures the qualitative behaviour of IR drop
/// spreading through a resistive mesh: strong locally, with a long
/// power-law tail (every wire "sees" the trojan a little — the effect the
/// paper exploits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerGrid {
    /// Coupling length λ, in slice pitches.
    pub lambda: f64,
    /// Delay added to a victim cell per unit of trojan load at distance 0,
    /// ps (calibrated so the paper's Fig. 3 shifts of 0.1–1.4 ns arise from
    /// trojans of tens of LUTs).
    pub delay_ps_per_load: f64,
}

impl PowerGrid {
    /// Default grid model for the virtual Virtex-5 fabric.
    pub fn virtex5() -> Self {
        PowerGrid {
            lambda: 6.0,
            delay_ps_per_load: 16.0,
        }
    }

    /// The dimensionless coupling factor between two slices (1.0 at zero
    /// distance, decaying with separation).
    pub fn coupling(&self, a: SliceCoord, b: SliceCoord) -> f64 {
        let d = a.euclidean(b);
        1.0 / (1.0 + (d / self.lambda).powi(2))
    }

    /// Delay increment (ps) experienced by a cell at `victim` due to a set
    /// of trojan cells at the given slices, each contributing one unit of
    /// static load.
    pub fn delay_shift_ps(&self, victim: SliceCoord, trojan_slices: &[SliceCoord]) -> f64 {
        trojan_slices
            .iter()
            .map(|&t| self.coupling(victim, t) * self.delay_ps_per_load)
            .sum()
    }
}

impl Default for PowerGrid {
    fn default() -> Self {
        PowerGrid::virtex5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_is_one_at_zero_distance() {
        let g = PowerGrid::virtex5();
        let a = SliceCoord::new(3, 3);
        assert_eq!(g.coupling(a, a), 1.0);
    }

    #[test]
    fn coupling_decays_monotonically() {
        let g = PowerGrid::virtex5();
        let a = SliceCoord::new(0, 0);
        let mut prev = f64::INFINITY;
        for x in 0..20u16 {
            let c = g.coupling(a, SliceCoord::new(x, 0));
            assert!(c <= prev);
            prev = c;
        }
        // Half coupling at d = λ.
        let at_lambda = g.coupling(a, SliceCoord::new(6, 0));
        assert!((at_lambda - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delay_shift_accumulates_over_trojan_cells() {
        let g = PowerGrid::virtex5();
        let victim = SliceCoord::new(5, 5);
        let one = g.delay_shift_ps(victim, &[SliceCoord::new(6, 5)]);
        let two = g.delay_shift_ps(victim, &[SliceCoord::new(6, 5), SliceCoord::new(6, 5)]);
        assert!((two - 2.0 * one).abs() < 1e-12);
        assert!(one > 0.0);
    }

    #[test]
    fn bigger_trojans_shift_more() {
        let g = PowerGrid::virtex5();
        let victim = SliceCoord::new(0, 0);
        let small: Vec<SliceCoord> = (0..5).map(|i| SliceCoord::new(10 + i, 10)).collect();
        let large: Vec<SliceCoord> = (0..15)
            .map(|i| SliceCoord::new(10 + i % 5, 10 + i / 5))
            .collect();
        assert!(g.delay_shift_ps(victim, &large) > g.delay_shift_ps(victim, &small));
    }
}
