//! A Virtex-5-like FPGA fabric model: device grid, placement, routing-delay
//! parameters, process variations and power-grid coupling.
//!
//! The DATE 2015 paper performs its experiments on Xilinx Virtex-5 LX30
//! parts (65 nm). This crate is the simulation stand-in for that silicon:
//!
//! * [`Device`] — a rectangular grid of slices, each holding four 6-input
//!   LUT sites and four flip-flop sites (the Virtex-5 slice organisation).
//! * [`Placement`] — a deterministic greedy packer plus the site bookkeeping
//!   needed by the paper's layout-level trojan insertion (find *unused*
//!   sites near a victim net, place extra cells there without disturbing
//!   the original placement).
//! * [`Technology`] — delay and switching-energy parameters of the virtual
//!   65 nm process.
//! * [`VariationModel`] / [`DieVariation`] — Gaussian inter-die (global) and
//!   spatially-correlated intra-die (per-slice) process variations, seeded
//!   per virtual die so that the paper's 8-FPGA study is reproducible.
//! * [`PowerGrid`] — the shared power-distribution-network coupling through
//!   which a dormant trojan disturbs its neighbours ("both share the same
//!   power grid inside the FPGA", Section III-B).
//!
//! # Example
//!
//! ```
//! use htd_fabric::{Device, DeviceConfig, Placement};
//! use htd_netlist::Netlist;
//!
//! let mut nl = Netlist::new("blink");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let x = nl.xor2(a, b);
//! let q = nl.add_dff(x, "r")?;
//! nl.add_output("q", q)?;
//!
//! let device = Device::new(DeviceConfig::new(8, 8));
//! let placement = Placement::place(&nl, &device)?;
//! assert_eq!(placement.used_slices(), 1); // 1 LUT + 1 FF share a slice
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod placement;
mod power_grid;
mod tech;
pub mod variation;

pub use device::{Device, DeviceConfig, Site, SiteKind, SliceCoord, FFS_PER_SLICE, LUTS_PER_SLICE};
pub use error::FabricError;
pub use placement::Placement;
pub use power_grid::PowerGrid;
pub use tech::Technology;
pub use variation::{DieVariation, VariationModel};
