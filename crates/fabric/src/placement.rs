//! Deterministic placement and the site bookkeeping used for layout-level
//! trojan insertion.

use htd_netlist::{CellId, CellKind, Netlist};

use crate::device::{Device, Site, SiteKind, SliceCoord, FFS_PER_SLICE, LUTS_PER_SLICE};
use crate::FabricError;

/// A placement of a netlist's LUTs and flip-flops onto device sites.
///
/// The initial placement ([`Placement::place`]) is a deterministic greedy
/// row-major packer — the stand-in for the vendor place & route of the
/// golden design. Trojan insertion then adds cells to *free* sites with
/// [`Placement::place_cell_at`] / [`Placement::nearest_free_sites`],
/// leaving every original cell untouched, exactly like the paper's FPGA
/// Editor flow (Section II-A).
#[derive(Debug, Clone)]
pub struct Placement {
    device: Device,
    /// Site of each cell, indexed by `CellId`.
    sites: Vec<Option<Site>>,
    /// Occupant of each LUT site: `slice_index * 4 + site_index`.
    lut_occ: Vec<Option<CellId>>,
    /// Occupant of each FF site.
    ff_occ: Vec<Option<CellId>>,
}

impl Placement {
    /// Packs `netlist` onto `device` greedily: LUTs and flip-flops fill
    /// slices row-major from the origin. Deterministic for a given netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::CapacityExceeded`] if the design does not fit.
    pub fn place(netlist: &Netlist, device: &Device) -> Result<Self, FabricError> {
        let stats = netlist.stats();
        if stats.luts > device.lut_site_count() {
            return Err(FabricError::CapacityExceeded {
                needed: stats.luts,
                available: device.lut_site_count(),
                resource: "LUT",
            });
        }
        if stats.dffs > device.ff_site_count() {
            return Err(FabricError::CapacityExceeded {
                needed: stats.dffs,
                available: device.ff_site_count(),
                resource: "FF",
            });
        }
        let mut placement = Placement {
            device: *device,
            sites: vec![None; netlist.cell_count()],
            lut_occ: vec![None; device.lut_site_count()],
            ff_occ: vec![None; device.ff_site_count()],
        };
        let mut next_lut = 0usize;
        let mut next_ff = 0usize;
        for (id, cell) in netlist.cells() {
            match cell.kind() {
                CellKind::Lut(_) => {
                    let site = placement.site_from_flat(SiteKind::Lut, next_lut);
                    placement.occupy(id, site)?;
                    next_lut += 1;
                }
                CellKind::Dff => {
                    let site = placement.site_from_flat(SiteKind::Ff, next_ff);
                    placement.occupy(id, site)?;
                    next_ff += 1;
                }
                _ => {}
            }
        }
        Ok(placement)
    }

    fn site_from_flat(&self, kind: SiteKind, flat: usize) -> Site {
        let per = match kind {
            SiteKind::Lut => LUTS_PER_SLICE,
            SiteKind::Ff => FFS_PER_SLICE,
        };
        Site {
            slice: self.device.slice_at(flat / per),
            kind,
            index: (flat % per) as u8,
        }
    }

    fn flat_of(&self, site: Site) -> usize {
        let per = match site.kind {
            SiteKind::Lut => LUTS_PER_SLICE,
            SiteKind::Ff => FFS_PER_SLICE,
        };
        self.device.slice_index(site.slice) * per + site.index as usize
    }

    fn occupy(&mut self, cell: CellId, site: Site) -> Result<(), FabricError> {
        if !self.device.contains(site.slice) || site.index as usize >= LUTS_PER_SLICE {
            return Err(FabricError::SiteOutOfBounds { site });
        }
        let flat = self.flat_of(site);
        let occ = match site.kind {
            SiteKind::Lut => &mut self.lut_occ[flat],
            SiteKind::Ff => &mut self.ff_occ[flat],
        };
        if let Some(occupant) = *occ {
            return Err(FabricError::SiteOccupied { site, occupant });
        }
        *occ = Some(cell);
        if cell.index() >= self.sites.len() {
            self.sites.resize(cell.index() + 1, None);
        }
        self.sites[cell.index()] = Some(site);
        Ok(())
    }

    /// The device this placement targets.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Site of `cell`, if it is placed.
    pub fn site_of(&self, cell: CellId) -> Option<Site> {
        self.sites.get(cell.index()).copied().flatten()
    }

    /// Physical position of `cell` (slice centre), if it is placed.
    pub fn position_of(&self, cell: CellId) -> Option<(f64, f64)> {
        self.site_of(cell).map(|s| s.slice.center())
    }

    /// Places an *additional* cell (e.g. a trojan gate) at an explicit free
    /// site. Existing cells are never moved.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::IncompatibleSite`] for kind mismatches,
    /// [`FabricError::SiteOccupied`] / [`FabricError::SiteOutOfBounds`] for
    /// bad targets.
    pub fn place_cell_at(
        &mut self,
        netlist: &Netlist,
        cell: CellId,
        site: Site,
    ) -> Result<(), FabricError> {
        let kind = netlist.cell(cell).kind();
        let ok = matches!(
            (kind, site.kind),
            (CellKind::Lut(_), SiteKind::Lut) | (CellKind::Dff, SiteKind::Ff)
        );
        if !ok {
            return Err(FabricError::IncompatibleSite { cell, site });
        }
        self.occupy(cell, site)
    }

    /// Free sites of `kind`, sorted by Euclidean distance from `from`
    /// (ties broken by slice order, deterministic).
    pub fn nearest_free_sites(&self, kind: SiteKind, from: SliceCoord) -> Vec<Site> {
        let (occ, per) = match kind {
            SiteKind::Lut => (&self.lut_occ, LUTS_PER_SLICE),
            SiteKind::Ff => (&self.ff_occ, FFS_PER_SLICE),
        };
        let mut free: Vec<Site> = occ
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(flat, _)| Site {
                slice: self.device.slice_at(flat / per),
                kind,
                index: (flat % per) as u8,
            })
            .collect();
        free.sort_by(|a, b| {
            let da = from.euclidean(a.slice);
            let db = from.euclidean(b.slice);
            da.partial_cmp(&db)
                .expect("finite distances")
                .then(a.slice.cmp(&b.slice))
                .then(a.index.cmp(&b.index))
        });
        free
    }

    /// Number of slices with at least one occupied site — the paper's
    /// resource-usage denominator unit (Section II-B quotes HT and AES
    /// sizes in % of slices).
    pub fn used_slices(&self) -> usize {
        let mut used = vec![false; self.device.slice_count()];
        for (flat, occ) in self.lut_occ.iter().enumerate() {
            if occ.is_some() {
                used[flat / LUTS_PER_SLICE] = true;
            }
        }
        for (flat, occ) in self.ff_occ.iter().enumerate() {
            if occ.is_some() {
                used[flat / FFS_PER_SLICE] = true;
            }
        }
        used.iter().filter(|&&u| u).count()
    }

    /// Slices used by a specific set of cells.
    pub fn slices_of(&self, cells: &[CellId]) -> usize {
        let mut used = vec![false; self.device.slice_count()];
        for &c in cells {
            if let Some(site) = self.site_of(c) {
                used[self.device.slice_index(site.slice)] = true;
            }
        }
        used.iter().filter(|&&u| u).count()
    }

    /// Fraction of device slices in use.
    pub fn utilization(&self) -> f64 {
        self.used_slices() as f64 / self.device.slice_count() as f64
    }

    /// Centroid of the placed cells driving/using the given cells — used to
    /// aim trojan placement at its tap points.
    pub fn centroid(&self, cells: &[CellId]) -> Option<SliceCoord> {
        let mut n = 0usize;
        let (mut sx, mut sy) = (0f64, 0f64);
        for &c in cells {
            if let Some((x, y)) = self.position_of(c) {
                sx += x;
                sy += y;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let cols = self.device.config().cols();
        let rows = self.device.config().rows();
        Some(SliceCoord::new(
            ((sx / n as f64).floor() as u16).min(cols - 1),
            ((sy / n as f64).floor() as u16).min(rows - 1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;
    use htd_netlist::Netlist;

    fn xor_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut x = nl.xor2(a, b);
        for _ in 1..n {
            x = nl.xor2(x, b);
        }
        nl.add_output("x", x).unwrap();
        nl
    }

    #[test]
    fn greedy_packing_fills_slices_in_order() {
        let nl = xor_chain(6);
        let device = Device::new(DeviceConfig::new(4, 4));
        let p = Placement::place(&nl, &device).unwrap();
        // 6 LUTs → slices (0,0) and (1,0).
        assert_eq!(p.used_slices(), 2);
        let first_lut = nl
            .cells()
            .find(|(_, c)| c.kind().occupies_lut_site())
            .unwrap()
            .0;
        assert_eq!(p.site_of(first_lut).unwrap().slice, SliceCoord::new(0, 0));
    }

    #[test]
    fn capacity_is_checked() {
        let nl = xor_chain(20);
        let device = Device::new(DeviceConfig::new(2, 2)); // 16 LUT sites
        assert!(matches!(
            Placement::place(&nl, &device),
            Err(FabricError::CapacityExceeded {
                resource: "LUT",
                ..
            })
        ));
    }

    #[test]
    fn place_cell_at_rejects_conflicts_and_mismatches() {
        let mut nl = xor_chain(2);
        let device = Device::new(DeviceConfig::new(4, 4));
        let mut p = Placement::place(&nl, &device).unwrap();
        // Add a new LUT (simulating trojan insertion).
        let a = nl.add_input("extra");
        let t = nl.not_gate(a);
        let t_cell = nl.net(t).driver().unwrap();
        // Occupied site.
        let occupied = Site {
            slice: SliceCoord::new(0, 0),
            kind: SiteKind::Lut,
            index: 0,
        };
        assert!(matches!(
            p.place_cell_at(&nl, t_cell, occupied),
            Err(FabricError::SiteOccupied { .. })
        ));
        // Kind mismatch.
        let ff_site = Site {
            slice: SliceCoord::new(1, 1),
            kind: SiteKind::Ff,
            index: 0,
        };
        assert!(matches!(
            p.place_cell_at(&nl, t_cell, ff_site),
            Err(FabricError::IncompatibleSite { .. })
        ));
        // Free compatible site works and marks the slice used.
        let free = Site {
            slice: SliceCoord::new(3, 3),
            kind: SiteKind::Lut,
            index: 2,
        };
        p.place_cell_at(&nl, t_cell, free).unwrap();
        assert_eq!(p.site_of(t_cell), Some(free));
        assert_eq!(p.used_slices(), 2);
    }

    #[test]
    fn nearest_free_sites_sorted_by_distance() {
        let nl = xor_chain(4); // fills slice (0,0)
        let device = Device::new(DeviceConfig::new(3, 3));
        let p = Placement::place(&nl, &device).unwrap();
        let free = p.nearest_free_sites(SiteKind::Lut, SliceCoord::new(0, 0));
        assert_eq!(free.len(), device.lut_site_count() - 4);
        // Closest free slices first.
        let d0 = SliceCoord::new(0, 0).euclidean(free[0].slice);
        let dl = SliceCoord::new(0, 0).euclidean(free.last().unwrap().slice);
        assert!(d0 <= dl);
        assert!(free[0].slice == SliceCoord::new(1, 0) || free[0].slice == SliceCoord::new(0, 1));
    }

    #[test]
    fn centroid_tracks_cluster() {
        let nl = xor_chain(8);
        let device = Device::new(DeviceConfig::new(4, 4));
        let p = Placement::place(&nl, &device).unwrap();
        let luts: Vec<_> = nl
            .cells()
            .filter(|(_, c)| c.kind().occupies_lut_site())
            .map(|(id, _)| id)
            .collect();
        let c = p.centroid(&luts).unwrap();
        assert!(c.x <= 1 && c.y == 0);
        assert_eq!(p.centroid(&[]), None);
    }

    #[test]
    fn utilization_and_slices_of() {
        let nl = xor_chain(5);
        let device = Device::new(DeviceConfig::new(4, 4));
        let p = Placement::place(&nl, &device).unwrap();
        assert!((p.utilization() - 2.0 / 16.0).abs() < 1e-12);
        let luts: Vec<_> = nl
            .cells()
            .filter(|(_, c)| c.kind().occupies_lut_site())
            .map(|(id, _)| id)
            .collect();
        assert_eq!(p.slices_of(&luts), 2);
        assert_eq!(p.slices_of(&luts[..4]), 1);
    }
}
