//! Process-variation models: inter-die (global) and spatially-correlated
//! intra-die (per-slice) Gaussian perturbations.
//!
//! The paper models process variation as Gaussian noise (Section V-B,
//! citing Bowman et al. \[6\]) and distinguishes:
//!
//! * **intra-die** variation `dPV` — the per-net random delay inside one
//!   die (Eq. 2), which we realise as a spatially-correlated per-slice
//!   field (neighbouring slices track, distant slices decorrelate), and
//! * **inter-die** variation — the die-to-die personality spread that makes
//!   the 8-FPGA golden population of Section V disperse ("some FPGAs will
//!   emit more and some less").
//!
//! Every die is generated from a single `u64` seed so experiments are
//! exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::device::{Device, SliceCoord};

/// Draws a standard-normal sample via the Box–Muller transform.
///
/// `rand`'s core crate (the only RNG dependency allowed here) provides
/// uniform sampling only, so the Gaussian transform is implemented locally.
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Statistical parameters of the process-variation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Relative sigma of the die-wide delay factor (inter-die).
    pub inter_die_delay_sigma: f64,
    /// Relative sigma of the per-slice delay factor (intra-die).
    pub intra_die_delay_sigma: f64,
    /// Relative sigma of the die-wide switching-current factor (inter-die).
    pub inter_die_current_sigma: f64,
    /// Relative sigma of the per-slice switching-current factor (intra-die).
    pub intra_die_current_sigma: f64,
    /// Correlation length of the intra-die field, in slice pitches.
    pub correlation_length: f64,
}

impl VariationModel {
    /// Parameters representative of a 65 nm process: a few percent global
    /// spread, ~1.5 % local delay spread with an 8-slice correlation
    /// length.
    pub fn nm65() -> Self {
        VariationModel {
            // The die-to-die speed spread dominates the EM-metric
            // dispersion (timing warp moves trace edges by about a sample),
            // so it is the calibrated knob for the paper's Section V
            // false-negative rates: 4 % puts HT 1 at a ~30 % FN rate and
            // HT 3 well past the paper's 95 % detection bar.
            inter_die_delay_sigma: 0.040,
            intra_die_delay_sigma: 0.015,
            inter_die_current_sigma: 0.060,
            intra_die_current_sigma: 0.025,
            correlation_length: 8.0,
        }
    }

    /// A zero-variation model (every factor exactly 1) — useful to isolate
    /// other effects in tests.
    pub fn none() -> Self {
        VariationModel {
            inter_die_delay_sigma: 0.0,
            intra_die_delay_sigma: 0.0,
            inter_die_current_sigma: 0.0,
            intra_die_current_sigma: 0.0,
            correlation_length: 8.0,
        }
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel::nm65()
    }
}

/// The realised process variation of one fabricated (virtual) die.
#[derive(Debug, Clone)]
pub struct DieVariation {
    seed: u64,
    global_delay: f64,
    global_current: f64,
    slice_delay: Vec<f64>,
    slice_current: Vec<f64>,
    cols: u16,
}

impl DieVariation {
    /// Fabricates a die: draws the global factors and the correlated
    /// per-slice fields from `seed`.
    pub fn generate(model: &VariationModel, device: &Device, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let global_delay = 1.0 + model.inter_die_delay_sigma * standard_normal(&mut rng);
        let global_current = 1.0 + model.inter_die_current_sigma * standard_normal(&mut rng);
        let slice_delay = correlated_field(
            &mut rng,
            device,
            model.intra_die_delay_sigma,
            model.correlation_length,
        );
        let slice_current = correlated_field(
            &mut rng,
            device,
            model.intra_die_current_sigma,
            model.correlation_length,
        );
        DieVariation {
            seed,
            global_delay: global_delay.max(0.5),
            global_current: global_current.max(0.5),
            slice_delay,
            slice_current,
            cols: device.config().cols(),
        }
    }

    /// The seed this die was fabricated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Die-wide delay factor (1.0 = nominal).
    pub fn global_delay_factor(&self) -> f64 {
        self.global_delay
    }

    /// Die-wide switching-current factor (1.0 = nominal).
    pub fn global_current_factor(&self) -> f64 {
        self.global_current
    }

    /// Combined delay factor for logic in `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` lies outside the die this variation was generated
    /// for.
    pub fn delay_factor(&self, slice: SliceCoord) -> f64 {
        let idx = slice.y as usize * self.cols as usize + slice.x as usize;
        self.global_delay * self.slice_delay[idx]
    }

    /// Combined switching-current factor for logic in `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` lies outside the die.
    pub fn current_factor(&self, slice: SliceCoord) -> f64 {
        let idx = slice.y as usize * self.cols as usize + slice.x as usize;
        self.global_current * self.slice_current[idx]
    }
}

/// Generates a spatially-correlated multiplicative field with mean 1 and
/// standard deviation ≈ `sigma`: a coarse Gaussian grid at the correlation
/// length, bilinearly interpolated, mixed with an independent per-slice
/// term.
fn correlated_field<R: Rng>(
    rng: &mut R,
    device: &Device,
    sigma: f64,
    correlation_length: f64,
) -> Vec<f64> {
    let cols = device.config().cols() as usize;
    let rows = device.config().rows() as usize;
    if sigma == 0.0 {
        return vec![1.0; cols * rows];
    }
    let step = correlation_length.max(1.0);
    let gx = (cols as f64 / step).ceil() as usize + 2;
    let gy = (rows as f64 / step).ceil() as usize + 2;
    let coarse: Vec<f64> = (0..gx * gy).map(|_| standard_normal(rng)).collect();
    // Split the variance between correlated and independent components.
    let w_corr = (0.7f64).sqrt();
    let w_ind = (0.3f64).sqrt();
    let mut field = Vec::with_capacity(cols * rows);
    for y in 0..rows {
        for x in 0..cols {
            let fx = x as f64 / step;
            let fy = y as f64 / step;
            let x0 = fx.floor() as usize;
            let y0 = fy.floor() as usize;
            let tx = fx - x0 as f64;
            let ty = fy - y0 as f64;
            let g = |i: usize, j: usize| coarse[j.min(gy - 1) * gx + i.min(gx - 1)];
            let interp = g(x0, y0) * (1.0 - tx) * (1.0 - ty)
                + g(x0 + 1, y0) * tx * (1.0 - ty)
                + g(x0, y0 + 1) * (1.0 - tx) * ty
                + g(x0 + 1, y0 + 1) * tx * ty;
            let value = 1.0 + sigma * (w_corr * interp + w_ind * standard_normal(rng));
            field.push(value.max(0.5));
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    fn device() -> Device {
        Device::new(DeviceConfig::new(24, 24))
    }

    #[test]
    fn same_seed_same_die() {
        let m = VariationModel::nm65();
        let d = device();
        let a = DieVariation::generate(&m, &d, 7);
        let b = DieVariation::generate(&m, &d, 7);
        assert_eq!(a.global_delay_factor(), b.global_delay_factor());
        for s in d.slices() {
            assert_eq!(a.delay_factor(s), b.delay_factor(s));
            assert_eq!(a.current_factor(s), b.current_factor(s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let m = VariationModel::nm65();
        let d = device();
        let a = DieVariation::generate(&m, &d, 1);
        let b = DieVariation::generate(&m, &d, 2);
        assert_ne!(a.global_delay_factor(), b.global_delay_factor());
    }

    #[test]
    fn zero_model_is_exactly_nominal() {
        let m = VariationModel::none();
        let d = device();
        let v = DieVariation::generate(&m, &d, 3);
        assert_eq!(v.global_delay_factor(), 1.0);
        for s in d.slices() {
            assert_eq!(v.delay_factor(s), 1.0);
            assert_eq!(v.current_factor(s), 1.0);
        }
    }

    #[test]
    fn intra_die_spread_has_roughly_requested_sigma() {
        let m = VariationModel::nm65();
        let d = device();
        let v = DieVariation::generate(&m, &d, 11);
        let g = v.global_delay_factor();
        let samples: Vec<f64> = d.slices().map(|s| v.delay_factor(s) / g - 1.0).collect();
        let sd = htd_stats_like_std(&samples);
        assert!(
            sd > m.intra_die_delay_sigma * 0.4 && sd < m.intra_die_delay_sigma * 2.0,
            "sd = {sd}"
        );
    }

    #[test]
    fn neighbours_correlate_more_than_distant_slices() {
        let m = VariationModel::nm65();
        let d = device();
        // Average over many dies to expose the correlation structure.
        let mut near = Vec::new();
        let mut far = Vec::new();
        for seed in 0..200 {
            let v = DieVariation::generate(&m, &d, seed);
            // Strip the die-wide factor: only the intra-die field carries
            // the spatial correlation structure.
            let g = v.global_delay_factor();
            let a = v.delay_factor(SliceCoord::new(5, 5)) / g;
            let b = v.delay_factor(SliceCoord::new(6, 5)) / g; // 1 pitch away
            let c = v.delay_factor(SliceCoord::new(20, 20)) / g; // far away
            near.push((a, b));
            far.push((a, c));
        }
        let corr = |pairs: &[(f64, f64)]| {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            pearson_like(&xs, &ys)
        };
        assert!(
            corr(&near) > corr(&far) + 0.1,
            "near {} far {}",
            corr(&near),
            corr(&far)
        );
    }

    #[test]
    fn gaussian_sampler_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..20000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    fn htd_stats_like_std(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
    }

    fn pearson_like(xs: &[f64], ys: &[f64]) -> f64 {
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxy += (x - mx) * (y - my);
            sxx += (x - mx) * (x - mx);
            syy += (y - my) * (y - my);
        }
        sxy / (sxx * syy).sqrt()
    }
}
