//! Error type for fabric operations.

use std::error::Error;
use std::fmt;

use htd_netlist::CellId;

use crate::Site;

/// Errors returned by placement and fabric modelling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FabricError {
    /// The design needs more LUT or FF sites than the device provides.
    CapacityExceeded {
        /// Sites required.
        needed: usize,
        /// Sites available.
        available: usize,
        /// Human-readable resource name (`"LUT"` / `"FF"`).
        resource: &'static str,
    },
    /// An explicit placement targeted a site that is already occupied.
    SiteOccupied {
        /// The contested site.
        site: Site,
        /// The cell already there.
        occupant: CellId,
    },
    /// An explicit placement targeted a site outside the device.
    SiteOutOfBounds {
        /// The offending site.
        site: Site,
    },
    /// A cell kind was placed on an incompatible site (LUT on FF site or
    /// vice versa), or a non-placeable cell (port/constant) was placed.
    IncompatibleSite {
        /// The cell being placed.
        cell: CellId,
        /// The target site.
        site: Site,
    },
    /// A query referenced a cell with no recorded placement.
    Unplaced {
        /// The unplaced cell.
        cell: CellId,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::CapacityExceeded {
                needed,
                available,
                resource,
            } => write!(
                f,
                "design needs {needed} {resource} sites but the device has {available}"
            ),
            FabricError::SiteOccupied { site, occupant } => {
                write!(f, "site {site} already holds cell {occupant}")
            }
            FabricError::SiteOutOfBounds { site } => {
                write!(f, "site {site} lies outside the device")
            }
            FabricError::IncompatibleSite { cell, site } => {
                write!(f, "cell {cell} cannot occupy site {site}")
            }
            FabricError::Unplaced { cell } => write!(f, "cell {cell} has no placement"),
        }
    }
}

impl Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricError>();
        let e = FabricError::CapacityExceeded {
            needed: 10,
            available: 4,
            resource: "LUT",
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("LUT"));
    }
}
