//! Technology parameters of the virtual 65 nm process.

/// Delay and switching-activity parameters used to annotate a placed
/// netlist.
///
/// Values are loosely calibrated to a 65 nm FPGA fabric (Virtex-5 class) so
/// that the AES round delay, the 35 ps glitch step and the HT-induced
/// shifts land in the same relative ranges as the paper's measurements.
/// Absolute picosecond values are *not* claimed to match the authors'
/// silicon — see DESIGN.md §2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Intrinsic LUT6 propagation delay, ps.
    pub lut_delay_ps: f64,
    /// Base routed-net delay (driver + first switch box), ps.
    pub net_delay_base_ps: f64,
    /// Incremental net delay per slice pitch of Manhattan distance, ps.
    pub net_delay_per_slice_ps: f64,
    /// Incremental net delay per electrical fan-out beyond the first, ps.
    pub fanout_delay_ps: f64,
    /// Flip-flop clock-to-Q delay, ps.
    pub dff_clk2q_ps: f64,
    /// Flip-flop setup time, ps.
    pub dff_setup_ps: f64,
    /// Clock-network skew standard deviation across the die, ps.
    pub clock_skew_ps: f64,
    /// Per-measurement jitter / metastability noise standard deviation
    /// (the paper's `dM` term), ps.
    pub measurement_noise_ps: f64,
    /// Relative switching charge injected into the power grid per LUT
    /// output toggle (arbitrary EM units).
    pub lut_toggle_charge: f64,
    /// Relative switching charge per flip-flop toggle (clock tree + output).
    pub dff_toggle_charge: f64,
    /// Delay added to a net per foreign tap spliced onto it, ps. A trojan
    /// tapping an already-routed net forces a route spur plus extra input
    /// capacitance; the paper's Fig. 3 shows tapped bits shifting by
    /// hundreds of ps up to ~1.4 ns.
    pub tap_load_ps: f64,
}

impl Technology {
    /// Parameters for the scaled Virtex-5 stand-in used throughout the
    /// suite.
    pub fn virtex5() -> Self {
        Technology {
            lut_delay_ps: 220.0,
            net_delay_base_ps: 300.0,
            net_delay_per_slice_ps: 28.0,
            fanout_delay_ps: 14.0,
            dff_clk2q_ps: 320.0,
            dff_setup_ps: 180.0,
            clock_skew_ps: 25.0,
            measurement_noise_ps: 12.0,
            lut_toggle_charge: 1.0,
            dff_toggle_charge: 1.6,
            tap_load_ps: 280.0,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::virtex5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_ordered() {
        let t = Technology::default();
        assert!(t.lut_delay_ps > 0.0);
        assert!(t.net_delay_base_ps > 0.0);
        assert!(t.dff_setup_ps > 0.0);
        // Measurement noise must be smaller than the glitch step (35 ps)
        // for the paper's staircase readout to resolve single steps.
        assert!(t.measurement_noise_ps < 35.0);
        // FF toggles draw more charge than LUT toggles (clock tree).
        assert!(t.dff_toggle_charge > t.lut_toggle_charge);
    }
}
