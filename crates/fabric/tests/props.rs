//! Property-based tests for the fabric model.

use htd_fabric::{
    Device, DeviceConfig, DieVariation, Placement, PowerGrid, SliceCoord, VariationModel,
};
use htd_netlist::Netlist;
use proptest::prelude::*;

/// A random combinational netlist with `n` XOR stages.
fn chain(n: usize) -> Netlist {
    let mut nl = Netlist::new("chain");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let mut x = nl.xor2(a, b);
    for _ in 1..n.max(1) {
        x = nl.xor2(x, b);
    }
    let q = nl.add_dff(x, "r").unwrap();
    nl.add_output("q", q).unwrap();
    nl
}

proptest! {
    /// Placement puts every LUT/FF at a distinct in-bounds site.
    #[test]
    fn placement_sites_are_distinct_and_in_bounds(
        n_luts in 1usize..60,
        cols in 4u16..12,
        rows in 4u16..12,
    ) {
        let nl = chain(n_luts);
        let device = Device::new(DeviceConfig::new(cols, rows));
        prop_assume!(nl.stats().luts <= device.lut_site_count());
        let p = Placement::place(&nl, &device).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (id, cell) in nl.cells() {
            if let Some(site) = p.site_of(id) {
                prop_assert!(device.contains(site.slice));
                prop_assert!(seen.insert((site.slice, site.kind, site.index)),
                    "cell {:?} shares a site", cell.name());
            }
        }
        prop_assert!(p.used_slices() >= nl.stats().luts.div_ceil(4));
        prop_assert!(p.utilization() <= 1.0);
    }

    /// Capacity failures are reported, never panics.
    #[test]
    fn overflow_is_an_error(n_luts in 65usize..200) {
        let nl = chain(n_luts);
        let device = Device::new(DeviceConfig::new(4, 4)); // 64 LUT sites
        prop_assert!(Placement::place(&nl, &device).is_err());
    }

    /// Die variation factors are positive, bounded, and deterministic in
    /// the seed.
    #[test]
    fn variation_factors_bounded(seed in any::<u64>(), x in 0u16..10, y in 0u16..10) {
        let device = Device::new(DeviceConfig::new(10, 10));
        let m = VariationModel::nm65();
        let v = DieVariation::generate(&m, &device, seed);
        let s = SliceCoord::new(x, y);
        let d = v.delay_factor(s);
        let c = v.current_factor(s);
        prop_assert!(d > 0.3 && d < 3.0, "delay factor {d}");
        prop_assert!(c > 0.3 && c < 3.0, "current factor {c}");
        let v2 = DieVariation::generate(&m, &device, seed);
        prop_assert_eq!(d, v2.delay_factor(s));
    }

    /// Power-grid coupling is symmetric, unit at zero distance and
    /// monotonically decaying.
    #[test]
    fn coupling_properties(
        ax in 0u16..30, ay in 0u16..30,
        bx in 0u16..30, by in 0u16..30,
    ) {
        let g = PowerGrid::virtex5();
        let a = SliceCoord::new(ax, ay);
        let b = SliceCoord::new(bx, by);
        let c = g.coupling(a, b);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert_eq!(c, g.coupling(b, a));
        if a == b {
            prop_assert_eq!(c, 1.0);
        }
        // Moving further away never increases coupling.
        let further = SliceCoord::new(bx.saturating_add(5), by.saturating_add(5));
        if a.euclidean(further) >= a.euclidean(b) {
            prop_assert!(g.coupling(a, further) <= c + 1e-12);
        }
    }

    /// Delay shifts accumulate linearly in the trojan cell list.
    #[test]
    fn shifts_are_additive(
        vx in 0u16..20, vy in 0u16..20,
        cells in proptest::collection::vec((0u16..20, 0u16..20), 1..10),
    ) {
        let g = PowerGrid::virtex5();
        let victim = SliceCoord::new(vx, vy);
        let slices: Vec<SliceCoord> = cells.iter().map(|&(x, y)| SliceCoord::new(x, y)).collect();
        let total = g.delay_shift_ps(victim, &slices);
        let sum: f64 = slices.iter().map(|&s| g.delay_shift_ps(victim, &[s])).sum();
        prop_assert!((total - sum).abs() < 1e-9);
        prop_assert!(total > 0.0);
    }
}
