//! Property-based tests for the netlist IR and simulator.

use htd_netlist::{LutMask, Netlist};
use proptest::prelude::*;

proptest! {
    /// A LUT built from an arbitrary mask evaluates exactly per the mask.
    #[test]
    fn lut_eval_matches_mask(width in 1usize..=6, raw in any::<u64>(), row_seed in any::<u64>()) {
        let mask = LutMask::new(width, raw).unwrap();
        let row = row_seed & ((1 << width) - 1);
        let pins: Vec<bool> = (0..width).map(|i| (row >> i) & 1 == 1).collect();
        prop_assert_eq!(mask.eval(&pins), (mask.raw() >> row) & 1 == 1);
        prop_assert_eq!(mask.eval_row(row), mask.eval(&pins));
    }

    /// Wide XOR reduction equals bit-parity for arbitrary widths/patterns.
    #[test]
    fn xor_many_is_parity(width in 1usize..=80, pattern in proptest::collection::vec(any::<bool>(), 1..=80)) {
        let width = width.min(pattern.len());
        let mut nl = Netlist::new("p");
        let bits: Vec<_> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
        let out = nl.xor_many(&bits);
        nl.add_output("y", out).unwrap();
        let mut sim = nl.simulator().unwrap();
        for (i, &b) in bits.iter().enumerate() {
            sim.set(b, pattern[i]);
        }
        sim.settle();
        let expect = pattern[..width].iter().filter(|&&v| v).count() % 2 == 1;
        prop_assert_eq!(sim.get(out), expect);
    }

    /// AND/OR reductions equal all()/any().
    #[test]
    fn and_or_many_match_reference(pattern in proptest::collection::vec(any::<bool>(), 1..=64)) {
        let mut nl = Netlist::new("p");
        let bits: Vec<_> = (0..pattern.len()).map(|i| nl.add_input(format!("x{i}"))).collect();
        let and = nl.and_many(&bits);
        let or = nl.or_many(&bits);
        let mut sim = nl.simulator().unwrap();
        for (i, &b) in bits.iter().enumerate() {
            sim.set(b, pattern[i]);
        }
        sim.settle();
        prop_assert_eq!(sim.get(and), pattern.iter().all(|&v| v));
        prop_assert_eq!(sim.get(or), pattern.iter().any(|&v| v));
    }

    /// eq_const fires exactly on its own constant.
    #[test]
    fn eq_const_is_exact(width in 1usize..=48, value in any::<u64>(), probe in any::<u64>()) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let value = value & mask;
        let probe = probe & mask;
        let mut nl = Netlist::new("p");
        let bits: Vec<_> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
        let hit = nl.eq_const(&bits, value);
        let mut sim = nl.simulator().unwrap();
        sim.set_bus(&bits, probe as u128);
        sim.settle();
        prop_assert_eq!(sim.get(hit), probe == value);
    }

    /// A register chain delays a bit pattern by its length.
    #[test]
    fn shift_register_delays(depth in 1usize..=12, stream in proptest::collection::vec(any::<bool>(), 13..=40)) {
        let mut nl = Netlist::new("sr");
        let din = nl.add_input("d");
        let mut stage = din;
        for i in 0..depth {
            stage = nl.add_dff(stage, format!("s{i}")).unwrap();
        }
        nl.add_output("q", stage).unwrap();
        let mut sim = nl.simulator().unwrap();
        let mut seen = Vec::new();
        for &bit in &stream {
            sim.set(din, bit);
            sim.settle();
            sim.clock();
            seen.push(sim.get(stage));
        }
        // Reading after the clock edge, an N-deep chain shows the input
        // from N-1 iterations ago once the pipeline has filled.
        for i in depth..stream.len() {
            prop_assert_eq!(seen[i], stream[i + 1 - depth], "i = {}", i);
        }
    }

    /// Bus set/get round-trips through byte packing.
    #[test]
    fn bus_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..=16)) {
        let mut nl = Netlist::new("b");
        let nets: Vec<_> = (0..bytes.len() * 8).map(|i| nl.add_input(format!("x{i}"))).collect();
        let mut sim = nl.simulator().unwrap();
        sim.set_bus_bytes(&nets, &bytes);
        prop_assert_eq!(sim.get_bus_bytes(&nets), bytes);
    }
}

/// Non-proptest sanity: simulation is deterministic across fresh simulators.
#[test]
fn simulation_is_deterministic() {
    let mut nl = Netlist::new("det");
    let bits: Vec<_> = (0..24).map(|i| nl.add_input(format!("x{i}"))).collect();
    let x = nl.xor_many(&bits);
    let a = nl.and_many(&bits[..12]);
    let y = nl.mux2(a, x, bits[0]);
    nl.add_output("y", y).unwrap();
    let run = || {
        let mut sim = nl.simulator().unwrap();
        sim.set_bus(&bits, 0xF0F0F0);
        sim.settle();
        sim.get(y)
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------
// Optimizer equivalence on random circuits
// ---------------------------------------------------------------------

mod opt_props {
    use htd_netlist::{LutMask, NetId, Netlist};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Recipe {
        n_inputs: usize,
        n_dffs: usize,
        with_consts: bool,
        luts: Vec<(u64, Vec<usize>)>,
        dff_d_picks: Vec<usize>,
        stimulus: Vec<u64>,
    }

    fn recipe() -> impl Strategy<Value = Recipe> {
        (1usize..=4, 0usize..=3, any::<bool>()).prop_flat_map(|(n_inputs, n_dffs, with_consts)| {
            let luts = proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(0usize..64, 1..=4)),
                1..=12,
            );
            let dff_d = proptest::collection::vec(0usize..64, n_dffs);
            let stim = proptest::collection::vec(any::<u64>(), 1..=4);
            (
                Just(n_inputs),
                Just(n_dffs),
                Just(with_consts),
                luts,
                dff_d,
                stim,
            )
                .prop_map(
                    |(n_inputs, n_dffs, with_consts, luts, dff_d_picks, stimulus)| Recipe {
                        n_inputs,
                        n_dffs,
                        with_consts,
                        luts,
                        dff_d_picks,
                        stimulus,
                    },
                )
        })
    }

    fn build(r: &Recipe) -> (Netlist, Vec<NetId>, Vec<NetId>) {
        let mut nl = Netlist::new("rand");
        let inputs: Vec<NetId> = (0..r.n_inputs)
            .map(|i| nl.add_input(format!("in{i}")))
            .collect();
        let mut nets = inputs.clone();
        if r.with_consts {
            nets.push(nl.const_net(false));
            nets.push(nl.const_net(true));
        }
        let mut dff_cells = Vec::new();
        for i in 0..r.n_dffs {
            let (c, q) = nl.add_dff_uninit(format!("r{i}"));
            dff_cells.push(c);
            nets.push(q);
        }
        for (mask_bits, picks) in &r.luts {
            let ins: Vec<NetId> = picks.iter().map(|&p| nets[p % nets.len()]).collect();
            let mask = LutMask::new(ins.len(), *mask_bits).unwrap();
            let out = nl.add_lut(&ins, mask).unwrap();
            nets.push(out);
        }
        for (cell, pick) in dff_cells.iter().zip(&r.dff_d_picks) {
            nl.connect_dff_d(*cell, nets[pick % nets.len()]).unwrap();
        }
        // Observe a deterministic subset (every third net) plus the last.
        let mut observed = Vec::new();
        for (i, &n) in nets.iter().enumerate() {
            if i % 3 == 0 || i + 1 == nets.len() {
                nl.add_output(format!("o{i}"), n).unwrap();
                observed.push(n);
            }
        }
        (nl, inputs, observed)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The optimized netlist is sequentially equivalent to the
        /// original on every observed net, over multiple clock cycles,
        /// and never grows.
        #[test]
        fn optimize_preserves_behaviour(r in recipe()) {
            let (nl, inputs, observed) = build(&r);
            let opt = nl.optimize().unwrap();
            prop_assert!(opt.netlist.stats().luts <= nl.stats().luts);
            prop_assert_eq!(opt.netlist.stats().dffs, nl.stats().dffs);
            let mut s0 = nl.simulator().unwrap();
            let mut s1 = opt.netlist.simulator().unwrap();
            s0.settle();
            s1.settle();
            let new_inputs = opt.netlist.input_nets();
            for &pattern in &r.stimulus {
                for (i, &inp) in inputs.iter().enumerate() {
                    s0.set(inp, (pattern >> i) & 1 == 1);
                    s1.set(new_inputs[i], (pattern >> i) & 1 == 1);
                }
                s0.settle();
                s1.settle();
                for &net in &observed {
                    let mapped = opt.net(net).expect("observed nets survive");
                    prop_assert_eq!(s0.get(net), s1.get(mapped), "net {} pre-clock", net);
                }
                s0.clock();
                s1.clock();
                for &net in &observed {
                    let mapped = opt.net(net).expect("observed nets survive");
                    prop_assert_eq!(s0.get(net), s1.get(mapped), "net {} post-clock", net);
                }
            }
        }

        /// Optimization is idempotent on its own output (sizes stabilise).
        #[test]
        fn optimize_is_idempotent(r in recipe()) {
            let (nl, _, _) = build(&r);
            let once = nl.optimize().unwrap();
            let twice = once.netlist.optimize().unwrap();
            prop_assert_eq!(once.netlist.stats().luts, twice.netlist.stats().luts);
            prop_assert_eq!(once.netlist.stats().dffs, twice.netlist.stats().dffs);
        }

        /// Migration equivalence: the canned pass pipeline behind
        /// `optimize()` reproduces the frozen pre-framework optimizer
        /// byte for byte — serialised netlist, cell map and net map —
        /// on the same random corpus.
        #[test]
        fn optimize_matches_frozen_reference(r in recipe()) {
            let (nl, _, _) = build(&r);
            let reference = nl.optimize_reference().unwrap();
            let pipeline = nl.optimize().unwrap();
            prop_assert_eq!(reference.netlist.to_text(), pipeline.netlist.to_text());
            prop_assert_eq!(reference.cell_map, pipeline.cell_map);
            prop_assert_eq!(reference.net_map, pipeline.net_map);
            let once_ref = nl.optimize_once_reference().unwrap();
            let once = nl.optimize_once().unwrap();
            prop_assert_eq!(once_ref.netlist.to_text(), once.netlist.to_text());
            prop_assert_eq!(once_ref.cell_map, once.cell_map);
            prop_assert_eq!(once_ref.net_map, once.net_map);
        }

        /// The granular rewrite pipeline (constant propagation →
        /// constant-buffer elimination → dead-net elimination →
        /// unused-buffer removal, iterated to fixpoint) is sequentially
        /// equivalent to the original on every observed net.
        #[test]
        fn granular_pipeline_preserves_behaviour(r in recipe()) {
            let (nl, inputs, observed) = build(&r);
            let report = htd_netlist::PassManager::rewrites().run(&nl).unwrap();
            let opt = &report.optimized;
            let mut s0 = nl.simulator().unwrap();
            let mut s1 = opt.netlist.simulator().unwrap();
            s0.settle();
            s1.settle();
            for &pattern in &r.stimulus {
                for (i, &inp) in inputs.iter().enumerate() {
                    s0.set(inp, (pattern >> i) & 1 == 1);
                    s1.set(opt.net(inp).expect("inputs survive"), (pattern >> i) & 1 == 1);
                }
                s0.settle();
                s1.settle();
                for &net in &observed {
                    let mapped = opt.net(net).expect("observed nets survive");
                    prop_assert_eq!(s0.get(net), s1.get(mapped), "net {} pre-clock", net);
                }
                s0.clock();
                s1.clock();
                for &net in &observed {
                    let mapped = opt.net(net).expect("observed nets survive");
                    prop_assert_eq!(s0.get(net), s1.get(mapped), "net {} post-clock", net);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Text-serialization round-trips on random circuits
// ---------------------------------------------------------------------

mod serdes_props {
    use htd_netlist::{LutMask, Netlist};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// to_text/from_text round-trips arbitrary generated circuits
        /// exactly (structure and canonical text).
        #[test]
        fn text_roundtrip(
            n_inputs in 1usize..=4,
            n_dffs in 0usize..=3,
            luts in proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(0usize..64, 1..=4)),
                1..=12,
            ),
            dff_d in proptest::collection::vec(0usize..64, 0..=3),
            weird_name in "[a-zA-Z0-9 _\\\\\"\\[\\]]{0,12}",
        ) {
            let mut nl = Netlist::new(weird_name);
            let mut nets: Vec<_> =
                (0..n_inputs).map(|i| nl.add_input(format!("in{i}"))).collect();
            let mut cells = Vec::new();
            for i in 0..n_dffs {
                let (c, q) = nl.add_dff_uninit(format!("r{i}"));
                cells.push(c);
                nets.push(q);
            }
            for (mask_bits, picks) in &luts {
                let ins: Vec<_> = picks.iter().map(|&p| nets[p % nets.len()]).collect();
                let mask = LutMask::new(ins.len(), *mask_bits).unwrap();
                nets.push(nl.add_lut(&ins, mask).unwrap());
            }
            for (i, c) in cells.iter().enumerate() {
                let pick = dff_d.get(i).copied().unwrap_or(0);
                nl.connect_dff_d(*c, nets[pick % nets.len()]).unwrap();
            }
            nl.add_output("o", *nets.last().unwrap()).unwrap();

            let text = nl.to_text();
            let back = Netlist::from_text(&text).unwrap();
            prop_assert_eq!(back.to_text(), text);
            prop_assert_eq!(back.cell_count(), nl.cell_count());
            prop_assert_eq!(back.net_count(), nl.net_count());
            for (id, cell) in nl.cells() {
                prop_assert_eq!(back.cell(id).kind(), cell.kind());
                prop_assert_eq!(back.cell(id).inputs(), cell.inputs());
            }
        }
    }

    /// A hand-written cyclic netlist parses but fails validation — the
    /// parser is the one entry point that can express a combinational
    /// cycle, and levelization catches it.
    #[test]
    fn parsed_cycle_is_rejected_by_validation() {
        let text = "htdnet 1 \"cycle\"\n\
            net n0 \"a\"\n\
            net n1 \"x\"\n\
            net n2 \"y\"\n\
            input c0 \"a\" -> n0\n\
            lut c1 \"l1\" 0x8 (n0 n2) -> n1\n\
            lut c2 \"l2\" 0x2 (n1) -> n2\n\
            output c3 \"o\" (n2)\n";
        let nl = Netlist::from_text(text).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(htd_netlist::NetlistError::CombinationalCycle { .. })
        ));
    }
}
