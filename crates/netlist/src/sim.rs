//! Functional (zero-delay) simulation.

use crate::topo::Levelization;
use crate::{CellId, CellKind, NetId, Netlist, NetlistError};

/// A two-valued, zero-delay simulator for a [`Netlist`].
///
/// The simulator owns a value per net plus the flip-flop state. Typical use:
/// set the input nets with [`Simulator::set`], call [`Simulator::settle`] to
/// propagate through the combinational logic, then [`Simulator::clock`] to
/// advance one cycle (capture `D`, publish `Q`, settle again).
///
/// All state starts at `false` (flip-flops reset to 0), matching an FPGA
/// global reset.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    levels: Levelization,
    values: Vec<bool>,
    regs: Vec<bool>,
    dffs: Vec<CellId>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails
    /// [`Netlist::validate`](crate::Netlist::validate).
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let levels = netlist.levelize()?;
        let dffs: Vec<CellId> = netlist.dff_cells().map(|(id, _)| id).collect();
        let mut sim = Simulator {
            netlist,
            levels,
            values: vec![false; netlist.net_count()],
            regs: vec![false; dffs.len()],
            dffs,
        };
        sim.publish_state();
        Ok(sim)
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Sets the value of a net (normally a top-level input).
    ///
    /// The change is not propagated until [`Simulator::settle`] is called.
    #[inline]
    pub fn set(&mut self, net: NetId, value: bool) {
        self.values[net.index()] = value;
    }

    /// Sets a little-endian bus of nets from the low bits of `value`.
    pub fn set_bus(&mut self, nets: &[NetId], value: u128) {
        for (i, &n) in nets.iter().enumerate() {
            self.set(n, (value >> i) & 1 == 1);
        }
    }

    /// Sets a bus of nets from bytes (net `8*i + j` = bit `j` of `bytes[i]`,
    /// little-endian within each byte).
    pub fn set_bus_bytes(&mut self, nets: &[NetId], bytes: &[u8]) {
        for (i, &n) in nets.iter().enumerate() {
            let byte = bytes[i / 8];
            self.set(n, (byte >> (i % 8)) & 1 == 1);
        }
    }

    /// Reads the current value of a net.
    #[inline]
    pub fn get(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Reads a little-endian bus of nets into an integer.
    pub fn get_bus(&self, nets: &[NetId]) -> u128 {
        let mut v = 0u128;
        for (i, &n) in nets.iter().enumerate() {
            v |= (self.get(n) as u128) << i;
        }
        v
    }

    /// Reads a bus of nets into bytes (inverse of
    /// [`Simulator::set_bus_bytes`]).
    pub fn get_bus_bytes(&self, nets: &[NetId]) -> Vec<u8> {
        let mut out = vec![0u8; nets.len().div_ceil(8)];
        for (i, &n) in nets.iter().enumerate() {
            if self.get(n) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Propagates current input/register values through the combinational
    /// logic, in topological order.
    pub fn settle(&mut self) {
        for &cell_id in self.levels.order() {
            let cell = self.netlist.cell(cell_id);
            if let CellKind::Lut(mask) = cell.kind() {
                let mut row = 0u64;
                for (pin, &net) in cell.inputs().iter().enumerate() {
                    row |= (self.values[net.index()] as u64) << pin;
                }
                let out = cell.output().expect("lut drives a net");
                self.values[out.index()] = mask.eval_row(row);
            }
        }
    }

    /// Advances one clock cycle: captures every flip-flop's `D`, publishes
    /// the new `Q` values and settles the combinational logic.
    pub fn clock(&mut self) {
        for (i, &dff) in self.dffs.iter().enumerate() {
            let d = self.netlist.cell(dff).inputs()[0];
            self.regs[i] = self.values[d.index()];
        }
        self.publish_state();
        self.settle();
    }

    /// Resets every flip-flop to `false` and re-settles.
    pub fn reset(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = false);
        self.publish_state();
        self.settle();
    }

    /// Current register state, one entry per flip-flop in netlist order.
    pub fn registers(&self) -> &[bool] {
        &self.regs
    }

    /// A copy of every net's current value, indexed by `NetId` — the
    /// hand-off point to the timed event simulator, which resumes from a
    /// functional-simulation state.
    pub fn snapshot(&self) -> Vec<bool> {
        self.values.clone()
    }

    /// Overwrites the register state (entry `i` = flip-flop `i` in netlist
    /// order) and re-settles. Useful for loading a known round state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of flip-flops.
    pub fn load_registers(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.regs.len(), "register count mismatch");
        self.regs.copy_from_slice(state);
        self.publish_state();
        self.settle();
    }

    fn publish_state(&mut self) {
        for (i, &dff) in self.dffs.iter().enumerate() {
            let q = self
                .netlist
                .cell(dff)
                .output()
                .expect("dff drives its q net");
            self.values[q.index()] = self.regs[i];
        }
        for (_, cell) in self.netlist.cells() {
            if let CellKind::Const(v) = cell.kind() {
                let out = cell.output().expect("const drives a net");
                self.values[out.index()] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    #[test]
    fn toggle_flop_divides_by_two() {
        let mut nl = Netlist::new("t");
        let (dff, q) = nl.add_dff_uninit("r");
        let nq = nl.not_gate(q);
        nl.connect_dff_d(dff, nq).unwrap();
        nl.add_output("q", q).unwrap();
        let mut sim = nl.simulator().unwrap();
        sim.settle();
        let mut seq = Vec::new();
        for _ in 0..6 {
            seq.push(sim.get(q));
            sim.clock();
        }
        assert_eq!(seq, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn counter_counts() {
        let mut nl = Netlist::new("ctr");
        let mut qs = Vec::new();
        let mut cells = Vec::new();
        for i in 0..4 {
            let (c, q) = nl.add_dff_uninit(format!("c{i}"));
            cells.push(c);
            qs.push(q);
        }
        let next = nl.incrementer(&qs.clone());
        for (c, d) in cells.iter().zip(next.iter()) {
            nl.connect_dff_d(*c, *d).unwrap();
        }
        nl.add_output("q0", qs[0]).unwrap();
        let mut sim = nl.simulator().unwrap();
        sim.settle();
        for expect in 0..20u128 {
            assert_eq!(sim.get_bus(&qs), expect % 16);
            sim.clock();
        }
    }

    #[test]
    fn bus_roundtrip() {
        let mut nl = Netlist::new("bus");
        let nets: Vec<_> = (0..16).map(|i| nl.add_input(format!("x{i}"))).collect();
        let mut sim = nl.simulator().unwrap();
        sim.set_bus(&nets, 0xBEEF);
        assert_eq!(sim.get_bus(&nets), 0xBEEF);
        sim.set_bus_bytes(&nets, &[0x12, 0x34]);
        assert_eq!(sim.get_bus_bytes(&nets), vec![0x12, 0x34]);
        assert_eq!(sim.get_bus(&nets), 0x3412);
    }

    #[test]
    fn reset_clears_state() {
        let mut nl = Netlist::new("t");
        let (dff, q) = nl.add_dff_uninit("r");
        let nq = nl.not_gate(q);
        nl.connect_dff_d(dff, nq).unwrap();
        let mut sim = nl.simulator().unwrap();
        sim.settle();
        sim.clock();
        assert!(sim.get(q));
        sim.reset();
        assert!(!sim.get(q));
    }

    #[test]
    fn load_registers_sets_round_state() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        nl.add_output("q", q).unwrap();
        let mut sim = nl.simulator().unwrap();
        sim.load_registers(&[true]);
        assert!(sim.get(q));
        assert_eq!(sim.registers(), &[true]);
    }
}
