//! Text serialization of netlists — the suite's equivalent of the paper's
//! NCD file exchange (Section II-A steps 2–4 extract and re-emit the
//! circuit description).
//!
//! The format is line-oriented and diff-friendly:
//!
//! ```text
//! htdnet 1 "aes128"
//! net n0 "pt[0]"
//! input c0 "pt[0]" -> n0
//! lut c5 "xor" 0x6 (n0 n1) -> n2
//! dff c6 "state[0]" (n2) -> n3
//! const c7 1 -> n4
//! output c8 "ct[0]" (n3)
//! ```
//!
//! Nets are declared before use; cells reference nets by id. Ids must be
//! dense and in creation order, which [`Netlist::to_text`] guarantees and
//! [`Netlist::from_text`] verifies — so a parsed netlist is structurally
//! identical (same ids) to the one that was serialized.

use crate::cell::{CellKind, LutMask};
use crate::{NetId, Netlist};

use std::error::Error;
use std::fmt;

/// Errors produced by [`Netlist::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The header line is missing or malformed.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Ids were not dense / in creation order.
    NonCanonicalIds {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed `htdnet` header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::NonCanonicalIds { line } => {
                write!(f, "line {line}: ids must appear densely in creation order")
            }
        }
    }
}

impl Error for ParseError {}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a quoted string starting at `s`; returns (content, rest).
fn unquote(s: &str) -> Option<(String, &str)> {
    let s = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, e)) => out.push(e),
                None => return None,
            },
            '"' => return Some((out, &s[i + 1..])),
            c => out.push(c),
        }
    }
    None
}

impl Netlist {
    /// Serializes the netlist to the `htdnet` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("htdnet 1 {}\n", quote(self.name())));
        for (id, net) in self.nets() {
            out.push_str(&format!("net {id} {}\n", quote(net.name())));
        }
        for (id, cell) in self.cells() {
            let name = quote(cell.name());
            let ins = cell
                .inputs()
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            match cell.kind() {
                CellKind::Input => {
                    let o = cell.output().expect("input drives a net");
                    out.push_str(&format!("input {id} {name} -> {o}\n"));
                }
                CellKind::Output => {
                    out.push_str(&format!("output {id} {name} ({ins})\n"));
                }
                CellKind::Const(v) => {
                    let o = cell.output().expect("const drives a net");
                    out.push_str(&format!("const {id} {} -> {o}\n", v as u8));
                }
                CellKind::Lut(mask) => {
                    let o = cell.output().expect("lut drives a net");
                    out.push_str(&format!(
                        "lut {id} {name} {:#x} ({ins}) -> {o}\n",
                        mask.raw()
                    ));
                }
                CellKind::Dff => {
                    let o = cell.output().expect("dff drives a net");
                    out.push_str(&format!("dff {id} {name} ({ins}) -> {o}\n"));
                }
            }
        }
        out
    }

    /// Parses a netlist from the `htdnet` text format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first offending line.
    pub fn from_text(text: &str) -> Result<Netlist, ParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
        let rest = header
            .strip_prefix("htdnet 1 ")
            .ok_or(ParseError::BadHeader)?;
        let (name, _) = unquote(rest.trim()).ok_or(ParseError::BadHeader)?;
        let mut nl = Netlist::new(name);

        let bad = |line: usize, reason: &str| ParseError::BadLine {
            line: line + 1,
            reason: reason.to_string(),
        };
        let parse_net_id = |tok: &str, line: usize| -> Result<NetId, ParseError> {
            tok.strip_prefix('n')
                .and_then(|t| t.parse::<usize>().ok())
                .map(NetId::from_index)
                .ok_or_else(|| bad(line, "expected net id"))
        };

        // Deferred D connections: (cell-in-new-netlist, d net).
        let mut pending_dffs: Vec<(crate::CellId, NetId)> = Vec::new();

        for (lineno, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kw, rest) = line
                .split_once(' ')
                .ok_or_else(|| bad(lineno, "missing keyword"))?;
            match kw {
                "net" => {
                    let (id_tok, rest) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "net needs id and name"))?;
                    let id = parse_net_id(id_tok, lineno)?;
                    let (name, _) =
                        unquote(rest.trim()).ok_or_else(|| bad(lineno, "bad net name"))?;
                    let actual = nl.add_net(name);
                    if actual != id {
                        return Err(ParseError::NonCanonicalIds { line: lineno + 1 });
                    }
                }
                "input" => {
                    let (_id, rest) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "input needs id"))?;
                    let (name, rest) =
                        unquote(rest.trim()).ok_or_else(|| bad(lineno, "bad name"))?;
                    let out_tok = rest
                        .trim()
                        .strip_prefix("->")
                        .ok_or_else(|| bad(lineno, "input needs -> net"))?;
                    let out = parse_net_id(out_tok.trim(), lineno)?;
                    // add_input creates a fresh net; we need it to drive an
                    // existing one. Recreate via raw plumbing: inputs in
                    // the canonical format always drive the net declared
                    // with the same name, which must be the next free
                    // driver. We reuse add_input-like behaviour through a
                    // dedicated hook.
                    let cell = nl
                        .add_port_input_to(out, name)
                        .map_err(|e| bad(lineno, &e.to_string()))?;
                    let _ = cell;
                }
                "output" => {
                    let (_id, rest) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "output needs id"))?;
                    let (name, rest) =
                        unquote(rest.trim()).ok_or_else(|| bad(lineno, "bad name"))?;
                    let ins = rest.trim();
                    let ins = ins
                        .strip_prefix('(')
                        .and_then(|s| s.strip_suffix(')'))
                        .ok_or_else(|| bad(lineno, "output needs (net)"))?;
                    let net = parse_net_id(ins.trim(), lineno)?;
                    nl.add_output(name, net)
                        .map_err(|e| bad(lineno, &e.to_string()))?;
                }
                "const" => {
                    let (_id, rest) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "const needs id"))?;
                    let (v_tok, rest) = rest
                        .trim()
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "const needs value"))?;
                    let value = match v_tok {
                        "0" => false,
                        "1" => true,
                        _ => return Err(bad(lineno, "const value must be 0 or 1")),
                    };
                    let out_tok = rest
                        .trim()
                        .strip_prefix("->")
                        .ok_or_else(|| bad(lineno, "const needs -> net"))?;
                    let out = parse_net_id(out_tok.trim(), lineno)?;
                    nl.add_const_to(out, value)
                        .map_err(|e| bad(lineno, &e.to_string()))?;
                }
                "lut" => {
                    let (_id, rest) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "lut needs id"))?;
                    let (name, rest) =
                        unquote(rest.trim()).ok_or_else(|| bad(lineno, "bad name"))?;
                    let rest = rest.trim();
                    let (mask_tok, rest) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "lut needs mask"))?;
                    let raw = u64::from_str_radix(mask_tok.trim_start_matches("0x"), 16)
                        .map_err(|_| bad(lineno, "bad lut mask"))?;
                    let (ins_part, out_part) = rest
                        .split_once("->")
                        .ok_or_else(|| bad(lineno, "lut needs -> net"))?;
                    let ins_str = ins_part
                        .trim()
                        .strip_prefix('(')
                        .and_then(|s| s.strip_suffix(')'))
                        .ok_or_else(|| bad(lineno, "lut needs (inputs)"))?;
                    let inputs: Vec<NetId> = ins_str
                        .split_whitespace()
                        .map(|t| parse_net_id(t, lineno))
                        .collect::<Result<_, _>>()?;
                    let out = parse_net_id(out_part.trim(), lineno)?;
                    let mask =
                        LutMask::new(inputs.len(), raw).map_err(|e| bad(lineno, &e.to_string()))?;
                    nl.add_lut_to(out, &inputs, mask, name)
                        .map_err(|e| bad(lineno, &e.to_string()))?;
                }
                "dff" => {
                    let (_id, rest) = rest
                        .split_once(' ')
                        .ok_or_else(|| bad(lineno, "dff needs id"))?;
                    let (name, rest) =
                        unquote(rest.trim()).ok_or_else(|| bad(lineno, "bad name"))?;
                    let rest = rest.trim();
                    let (ins_part, out_part) = rest
                        .split_once("->")
                        .ok_or_else(|| bad(lineno, "dff needs -> net"))?;
                    let ins_str = ins_part
                        .trim()
                        .strip_prefix('(')
                        .and_then(|s| s.strip_suffix(')'))
                        .ok_or_else(|| bad(lineno, "dff needs (d)"))?;
                    let d = parse_net_id(ins_str.trim(), lineno)?;
                    let out = parse_net_id(out_part.trim(), lineno)?;
                    let cell = nl
                        .add_dff_to(out, name)
                        .map_err(|e| bad(lineno, &e.to_string()))?;
                    pending_dffs.push((cell, d));
                }
                _ => return Err(bad(lineno, "unknown keyword")),
            }
        }
        for (cell, d) in pending_dffs {
            nl.connect_dff_d(cell, d).map_err(|e| ParseError::BadLine {
                line: 0,
                reason: format!("dff connection: {e}"),
            })?;
        }
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn toy() -> Netlist {
        let mut nl = Netlist::new("toy \"quoted\"");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let t = nl.const_net(true);
        let x = nl.xor2(a, b);
        let y = nl.and2(x, t);
        let q = nl.add_dff(y, "r0").unwrap();
        // Feedback to exercise deferred D connections.
        let (f, fq) = nl.add_dff_uninit("loop");
        let nfq = nl.not_gate(fq);
        nl.connect_dff_d(f, nfq).unwrap();
        nl.add_output("q", q).unwrap();
        nl.add_output("fq", fq).unwrap();
        nl
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let nl = toy();
        let text = nl.to_text();
        let back = Netlist::from_text(&text).unwrap();
        assert_eq!(back.name(), nl.name());
        assert_eq!(back.cell_count(), nl.cell_count());
        assert_eq!(back.net_count(), nl.net_count());
        for (id, cell) in nl.cells() {
            let b = back.cell(id);
            assert_eq!(b.kind(), cell.kind(), "cell {id}");
            assert_eq!(b.inputs(), cell.inputs());
            assert_eq!(b.output(), cell.output());
            assert_eq!(b.name(), cell.name());
        }
        // And the round-tripped text is identical (canonical form).
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let nl = toy();
        let back = Netlist::from_text(&nl.to_text()).unwrap();
        let mut s0 = nl.simulator().unwrap();
        let mut s1 = back.simulator().unwrap();
        let ins = nl.input_nets();
        for pattern in 0..4u128 {
            s0.set_bus(&ins, pattern);
            s1.set_bus(&ins, pattern);
            s0.settle();
            s1.settle();
            s0.clock();
            s1.clock();
            for (id, _) in nl.nets() {
                assert_eq!(s0.get(id), s1.get(id), "net {id} pattern {pattern}");
            }
        }
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        assert!(matches!(
            Netlist::from_text("nonsense"),
            Err(ParseError::BadHeader)
        ));
        let bad = "htdnet 1 \"x\"\nnet n0 \"a\"\nfoo bar\n";
        match Netlist::from_text(bad) {
            Err(ParseError::BadLine { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BadLine, got {other:?}"),
        }
        let non_canonical = "htdnet 1 \"x\"\nnet n5 \"a\"\n";
        assert!(matches!(
            Netlist::from_text(non_canonical),
            Err(ParseError::NonCanonicalIds { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "htdnet 1 \"c\"\n\n# a comment\nnet n0 \"a\"\ninput c0 \"a\" -> n0\n";
        let nl = Netlist::from_text(text).unwrap();
        assert_eq!(nl.net_count(), 1);
        assert_eq!(nl.cell_count(), 1);
    }
}
