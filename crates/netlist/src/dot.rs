//! Graphviz DOT export for debugging small netlists.

use std::fmt::Write as _;

use crate::{CellId, CellKind, NetId, Netlist};

/// Escapes a string for use inside a DOT double-quoted string: `"` and
/// `\` are backslash-escaped, newlines become `\n`. Generated names
/// (e.g. trojan cells like `ht_fsm[0]`) pass through structurally but
/// must never be able to break out of the quoted label.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            _ => out.push(c),
        }
    }
    out
}

impl Netlist {
    /// Renders the netlist as a Graphviz `digraph` (cells as nodes, nets as
    /// edges labelled with the net name). Intended for debugging small
    /// circuits; the AES netlist renders but is not human-readable.
    pub fn to_dot(&self) -> String {
        self.to_dot_marked(&[], &[])
    }

    /// Like [`to_dot`](Self::to_dot), but renders `marked_cells` and
    /// `marked_nets` — typically the cells and nets an inserted trojan
    /// added or taps — in a distinct style (red, filled/bold) so the
    /// foreign logic stands out against the host circuit.
    pub fn to_dot_marked(&self, marked_cells: &[CellId], marked_nets: &[NetId]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(self.name()));
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, cell) in self.cells() {
            let shape = match cell.kind() {
                CellKind::Input => "invtriangle",
                CellKind::Output => "triangle",
                CellKind::Dff => "box",
                CellKind::Const(_) => "circle",
                CellKind::Lut(_) => "ellipse",
            };
            let style = if marked_cells.contains(&id) {
                ", style=filled, fillcolor=\"#ffb0b0\", color=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {id} [label=\"{} ({})\", shape={shape}{style}];",
                escape(cell.name()),
                cell.kind()
            );
        }
        for (id, net) in self.nets() {
            let style = if marked_nets.contains(&id) {
                ", color=red, penwidth=2"
            } else {
                ""
            };
            if let Some(driver) = net.driver() {
                for &sink in net.sinks() {
                    let _ = writeln!(
                        out,
                        "  {driver} -> {sink} [label=\"{}\"{style}];",
                        escape(net.name())
                    );
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    #[test]
    fn dot_output_contains_cells_and_edges() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let x = nl.not_gate(a);
        nl.add_output("x", x).unwrap();
        let dot = nl.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("invtriangle"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn generated_names_are_escaped_in_labels() {
        let mut nl = Netlist::new("quo\"te");
        let a = nl.add_input("in\"put\\1");
        let x = nl.not_gate(a);
        nl.add_output("out", x).unwrap();
        let dot = nl.to_dot();
        assert!(dot.contains("digraph \"quo\\\"te\""));
        assert!(dot.contains("in\\\"put\\\\1"));
        // Every label stays inside its quotes: no line may contain an
        // unescaped quote that terminates the string early.
        for line in dot.lines().filter(|l| l.contains("label=")) {
            let tail = line.split("label=\"").nth(1).unwrap();
            let mut escaped = false;
            let mut closes = 0;
            for c in tail.chars() {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => closes += 1,
                    _ => escaped = false,
                }
            }
            assert_eq!(closes, 1, "label quote broke out early: {line}");
        }
    }

    #[test]
    fn marked_cells_and_nets_get_the_trojan_style() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.and2(a, b);
        nl.add_output("x", x).unwrap();
        let trojan_cell = nl
            .cells()
            .find(|(_, c)| matches!(c.kind(), crate::CellKind::Lut(_)))
            .map(|(id, _)| id)
            .expect("lut cell exists");
        let dot = nl.to_dot_marked(&[trojan_cell], &[x]);
        assert!(dot.contains("fillcolor=\"#ffb0b0\""));
        assert!(dot.contains("penwidth=2"));
        // Unmarked rendering carries no trojan styling at all.
        assert!(!nl.to_dot().contains("fillcolor"));
    }
}
