//! Graphviz DOT export for debugging small netlists.

use std::fmt::Write as _;

use crate::{CellKind, Netlist};

impl Netlist {
    /// Renders the netlist as a Graphviz `digraph` (cells as nodes, nets as
    /// edges labelled with the net name). Intended for debugging small
    /// circuits; the AES netlist renders but is not human-readable.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, cell) in self.cells() {
            let shape = match cell.kind() {
                CellKind::Input => "invtriangle",
                CellKind::Output => "triangle",
                CellKind::Dff => "box",
                CellKind::Const(_) => "circle",
                CellKind::Lut(_) => "ellipse",
            };
            let _ = writeln!(
                out,
                "  {id} [label=\"{} ({})\", shape={shape}];",
                cell.name(),
                cell.kind()
            );
        }
        for (_, net) in self.nets() {
            if let Some(driver) = net.driver() {
                for &sink in net.sinks() {
                    let _ = writeln!(out, "  {driver} -> {sink} [label=\"{}\"];", net.name());
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    #[test]
    fn dot_output_contains_cells_and_edges() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let x = nl.not_gate(a);
        nl.add_output("x", x).unwrap();
        let dot = nl.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("invtriangle"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }
}
