//! Composable netlist pass framework.
//!
//! A [`Pass`] is a named analysis or transformation over a [`Netlist`];
//! a [`PassManager`] runs an ordered pipeline of passes to a fixed point
//! and aggregates their [`Diagnostics`]. The framework follows the style
//! of rhdl's flow-graph passes: small, individually testable rewrites
//! (constant propagation, constant-buffer elimination, dead-net
//! elimination, unused-buffer removal) plus pure *lint* passes that
//! report structural problems without touching the netlist.
//!
//! Because [`Netlist`] ids are stable-by-construction (cells are never
//! removed in place), rewrite passes do not mutate the input: they
//! rebuild a fresh netlist and return it as
//! [`PassOutcome::Rewritten`] together with the old→new id maps, exactly
//! like the legacy optimizer. The manager composes those maps across the
//! pipeline so callers can still translate original ids after any number
//! of sweeps.
//!
//! # Determinism rules
//!
//! * A pass's output is a pure function of its input netlist — no
//!   randomness, no ordering dependence on hash-map iteration, no clocks.
//! * Passes run in pipeline order; the manager re-sweeps until the
//!   netlist size (LUTs + nets) stabilises, capped by
//!   [`PassManager::max_iterations`], mirroring the legacy fixpoint loop.
//! * Diagnostics counters are keyed by pass name in sorted order, so the
//!   `pass.<name>.*` counter section is worker-invariant and
//!   byte-reproducible.
//!
//! # Example
//!
//! ```
//! use htd_netlist::passes::PassManager;
//! use htd_netlist::Netlist;
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let t = nl.const_net(true);
//! let x = nl.and2(a, t); // = a
//! nl.add_output("x", x)?;
//! let report = PassManager::standard().run(&nl)?;
//! assert_eq!(report.optimized.netlist.stats().luts, 0);
//! # Ok::<(), htd_netlist::NetlistError>(())
//! ```

pub(crate) mod kernel;
mod lint;
mod rewrite;

use std::collections::BTreeMap;
use std::fmt;

use crate::opt::Optimized;
use crate::{CellId, NetId, Netlist, NetlistError};

pub use lint::{CheckCombLoops, CheckFanout, CheckUnconnected};
pub use rewrite::{
    ConstantBufferElimination, ConstantPropagation, DeadNetElimination, FullOptimize,
    UnusedBufferRemoval,
};

/// What a pass did to the netlist.
#[derive(Debug, Clone)]
pub enum PassOutcome {
    /// The pass changed nothing (analyses and lint passes always return
    /// this).
    Clean,
    /// The pass rebuilt the netlist; the [`Optimized`] carries the new
    /// netlist plus old→new id maps.
    Rewritten(Optimized),
}

/// A named, deterministic analysis or transformation over a netlist.
pub trait Pass {
    /// Stable identifier used in diagnostics and `pass.<name>.*`
    /// counters. Lowercase snake_case by convention.
    fn name(&self) -> &'static str;

    /// Runs the pass. Rewrite passes return
    /// [`PassOutcome::Rewritten`]; lint passes record findings in
    /// `diags` and return [`PassOutcome::Clean`].
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from reconstruction (an internal
    /// invariant violation, not a user error).
    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError>;
}

/// Per-pass aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// How many times the pass ran.
    pub runs: u64,
    /// Cells removed across all runs (old count − new count, saturating).
    pub cells_removed: u64,
    /// Nets removed across all runs (old count − new count, saturating).
    pub nets_removed: u64,
    /// Lint findings reported across all runs.
    pub lints: u64,
}

/// One lint finding: a structural problem a lint pass reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Name of the reporting pass.
    pub pass: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pass, self.message)
    }
}

/// Deterministic diagnostics sink shared by every pass in a pipeline.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    stats: BTreeMap<&'static str, PassStats>,
    lints: Vec<Lint>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `pass`.
    pub fn record_run(&mut self, pass: &'static str) {
        self.stats.entry(pass).or_default().runs += 1;
    }

    /// Records the size delta of a rewrite (saturating: a rebuild may
    /// legitimately add constant cells).
    pub fn record_rewrite(&mut self, pass: &'static str, before: &Netlist, after: &Netlist) {
        let s = self.stats.entry(pass).or_default();
        s.cells_removed += before.cell_count().saturating_sub(after.cell_count()) as u64;
        s.nets_removed += before.net_count().saturating_sub(after.net_count()) as u64;
    }

    /// Records one lint finding for `pass`.
    pub fn lint(&mut self, pass: &'static str, message: impl Into<String>) {
        self.stats.entry(pass).or_default().lints += 1;
        self.lints.push(Lint {
            pass,
            message: message.into(),
        });
    }

    /// Every lint finding, in emission order.
    pub fn lints(&self) -> &[Lint] {
        &self.lints
    }

    /// `true` when no lint pass reported anything.
    pub fn is_clean(&self) -> bool {
        self.lints.is_empty()
    }

    /// Statistics for one pass, if it ran.
    pub fn stats(&self, pass: &str) -> Option<PassStats> {
        self.stats.get(pass).copied()
    }

    /// All per-pass statistics, sorted by pass name.
    pub fn passes(&self) -> impl Iterator<Item = (&'static str, PassStats)> + '_ {
        self.stats.iter().map(|(&name, &s)| (name, s))
    }

    /// The diagnostics as deterministic observability counters:
    /// `pass.<name>.{runs,cells_removed,nets_removed,lints}` for every
    /// pass that ran, in sorted order, zeros included (so the counter
    /// schema does not depend on what the passes found).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.stats.len() * 4);
        for (name, s) in &self.stats {
            out.push((format!("pass.{name}.runs"), s.runs));
            out.push((format!("pass.{name}.cells_removed"), s.cells_removed));
            out.push((format!("pass.{name}.nets_removed"), s.nets_removed));
            out.push((format!("pass.{name}.lints"), s.lints));
        }
        out
    }
}

/// Result of a [`PassManager`] run: the final rebuilt netlist with
/// composed id maps, plus the aggregated diagnostics.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// The final netlist and the old→new id maps composed across every
    /// sweep (identity maps if no pass rewrote anything).
    pub optimized: Optimized,
    /// Aggregated per-pass statistics and lint findings.
    pub diagnostics: Diagnostics,
}

/// An ordered, deterministic pipeline of passes with fixed-point
/// iteration.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_iterations: usize,
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PassManager {
    /// An empty pipeline (iteration cap 32, like the legacy optimizer).
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            max_iterations: 32,
        }
    }

    /// The canned optimization pipeline behind
    /// [`Netlist::optimize`](crate::Netlist::optimize): the fused
    /// [`FullOptimize`] rewrite, which applies every structural
    /// transformation jointly in one rebuild per sweep. The fusion is
    /// load-bearing: it is what keeps the pipeline bit-identical to the
    /// historical monolithic optimizer (sequencing the granular passes
    /// would assign different ids and never merge duplicates the same
    /// way).
    pub fn standard() -> Self {
        Self::new().with_pass(FullOptimize)
    }

    /// The granular rewrite passes in a deterministic order, for callers
    /// composing custom pipelines. Functionally equivalent to
    /// [`PassManager::standard`] on every input/state, but *not*
    /// byte-identical (no cross-pass duplicate merging).
    pub fn rewrites() -> Self {
        Self::new()
            .with_pass(ConstantPropagation)
            .with_pass(ConstantBufferElimination)
            .with_pass(DeadNetElimination)
            .with_pass(UnusedBufferRemoval)
    }

    /// The structural lint pipeline: unconnected-pin, combinational-loop
    /// and fanout-cap checks. Lint passes never rewrite, so this
    /// pipeline runs in a single sweep.
    pub fn lints() -> Self {
        Self::new()
            .with_pass(CheckUnconnected)
            .with_pass(CheckCombLoops)
            .with_pass(CheckFanout::default())
    }

    /// Appends a pass to the pipeline.
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Caps the number of re-sweeps after the first (default 32).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Runs the pipeline to a fixed point and returns the final netlist,
    /// the composed id maps and the aggregated diagnostics.
    ///
    /// The pipeline sweeps once unconditionally; if any pass rewrote the
    /// netlist it keeps sweeping until the LUT and net counts stabilise
    /// (or the iteration cap is hit) — the same fixpoint criterion as
    /// the legacy `optimize`. Lint-only pipelines therefore run exactly
    /// one sweep; mixed pipelines re-run their lints each sweep.
    ///
    /// # Errors
    ///
    /// Propagates the first [`NetlistError`] a pass returns.
    pub fn run(&self, nl: &Netlist) -> Result<PassReport, NetlistError> {
        let mut diags = Diagnostics::new();
        let mut acc = Optimized {
            netlist: nl.clone(),
            cell_map: (0..nl.cell_count())
                .map(|i| Some(CellId::from_index(i)))
                .collect(),
            net_map: (0..nl.net_count())
                .map(|i| Some(NetId::from_index(i)))
                .collect(),
        };
        let rewrote = self.sweep(&mut acc, &mut diags)?;
        if rewrote {
            // Rewrites discovered *during* a rebuild only reach their
            // readers on the next sweep; iterate until the size
            // stabilises.
            for _ in 0..self.max_iterations {
                let before = acc.netlist.stats();
                self.sweep(&mut acc, &mut diags)?;
                let after = acc.netlist.stats();
                if after.luts == before.luts && after.nets == before.nets {
                    break;
                }
            }
        }
        Ok(PassReport {
            optimized: acc,
            diagnostics: diags,
        })
    }

    /// One in-order run of every pass, composing id maps across
    /// rewrites. Returns whether any pass rewrote the netlist.
    fn sweep(&self, acc: &mut Optimized, diags: &mut Diagnostics) -> Result<bool, NetlistError> {
        let mut rewrote = false;
        for pass in &self.passes {
            match pass.run(&acc.netlist, diags)? {
                PassOutcome::Clean => {}
                PassOutcome::Rewritten(next) => {
                    *acc = Optimized {
                        cell_map: acc
                            .cell_map
                            .iter()
                            .map(|m| m.and_then(|c| next.cell(c)))
                            .collect(),
                        net_map: acc
                            .net_map
                            .iter()
                            .map(|m| m.and_then(|n| next.net(n)))
                            .collect(),
                        netlist: next.netlist,
                    };
                    rewrote = true;
                }
            }
        }
        Ok(rewrote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn const_heavy() -> (Netlist, NetId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let t = nl.const_net(true);
        let f = nl.const_net(false);
        let x = nl.and2(a, f); // always 0
        let y = nl.or2(x, t); // always 1
        let z = nl.xor2(y, a); // = !a
        nl.add_output("z", z).unwrap();
        (nl, z)
    }

    #[test]
    fn standard_pipeline_matches_legacy_optimize() {
        let (nl, _) = const_heavy();
        let legacy = nl.optimize().unwrap();
        let report = PassManager::standard().run(&nl).unwrap();
        assert_eq!(legacy.netlist.to_text(), report.optimized.netlist.to_text());
        assert_eq!(legacy.cell_map, report.optimized.cell_map);
        assert_eq!(legacy.net_map, report.optimized.net_map);
    }

    #[test]
    fn granular_pipeline_is_functionally_equivalent() {
        let (nl, z) = const_heavy();
        let report = PassManager::rewrites().run(&nl).unwrap();
        let opt = &report.optimized;
        let a_old = nl.input_nets()[0];
        for va in [false, true] {
            let mut s0 = nl.simulator().unwrap();
            s0.set(a_old, va);
            s0.settle();
            let want = s0.get(z);
            let mut s1 = opt.netlist.simulator().unwrap();
            s1.set(opt.net(a_old).unwrap(), va);
            s1.settle();
            assert_eq!(s1.get(opt.net(z).unwrap()), want, "a = {va}");
        }
    }

    #[test]
    fn diagnostics_counters_are_deterministic_and_complete() {
        let (nl, _) = const_heavy();
        let r1 = PassManager::standard().run(&nl).unwrap();
        let r2 = PassManager::standard().run(&nl).unwrap();
        let c1 = r1.diagnostics.counters();
        assert_eq!(c1, r2.diagnostics.counters());
        let names: Vec<&str> = c1.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"pass.optimize.runs"));
        assert!(names.contains(&"pass.optimize.cells_removed"));
        assert!(names.contains(&"pass.optimize.nets_removed"));
        assert!(names.contains(&"pass.optimize.lints"));
        let runs = r1.diagnostics.stats("optimize").unwrap().runs;
        assert!(runs >= 2, "fixpoint needs a confirming sweep, got {runs}");
    }

    #[test]
    fn lint_pipeline_runs_a_single_sweep() {
        let (nl, _) = const_heavy();
        let report = PassManager::lints().run(&nl).unwrap();
        assert!(report.diagnostics.is_clean());
        for (name, s) in report.diagnostics.passes() {
            assert_eq!(s.runs, 1, "{name} ran more than once");
        }
        // A lint-only pipeline leaves the netlist untouched, maps identity.
        assert_eq!(report.optimized.netlist.to_text(), nl.to_text());
        assert!(report
            .optimized
            .cell_map
            .iter()
            .enumerate()
            .all(|(i, m)| *m == Some(CellId::from_index(i))));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let (nl, _) = const_heavy();
        let report = PassManager::new().run(&nl).unwrap();
        assert_eq!(report.optimized.netlist.to_text(), nl.to_text());
        assert!(report.diagnostics.counters().is_empty());
    }
}
