//! Structural lint passes.
//!
//! Lint passes never rewrite: they scan the netlist, report findings
//! through [`Diagnostics::lint`] and return [`PassOutcome::Clean`].
//! They gate generated netlists (every trojan-zoo instance is linted
//! before a campaign uses it) and double as the sanity layer for
//! hand-built designs.

use super::{Diagnostics, Pass, PassOutcome};
use crate::{CellKind, Netlist, NetlistError};

/// Unconnected-pin check: flip-flops whose `D` pin was never connected
/// (this single-implicit-clock IR's analog of an unconnected
/// clock/reset) and nets that are read but have no driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckUnconnected;

impl Pass for CheckUnconnected {
    fn name(&self) -> &'static str {
        "check_unconnected"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        diags.record_run(self.name());
        for (id, cell) in netlist.cells() {
            if matches!(cell.kind(), CellKind::Dff) && cell.inputs().is_empty() {
                diags.lint(
                    self.name(),
                    format!("flip-flop {id} `{}` has an unconnected D pin", cell.name()),
                );
            }
        }
        for (id, net) in netlist.nets() {
            if net.driver().is_none() && !net.sinks().is_empty() {
                diags.lint(
                    self.name(),
                    format!(
                        "net {id} `{}` is read by {} sink(s) but has no driver",
                        net.name(),
                        net.sinks().len()
                    ),
                );
            }
        }
        Ok(PassOutcome::Clean)
    }
}

/// Combinational-loop check: reports (instead of erroring on) cycles in
/// the combinational part of the netlist.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckCombLoops;

impl Pass for CheckCombLoops {
    fn name(&self) -> &'static str {
        "check_comb_loops"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        diags.record_run(self.name());
        if let Err(e) = netlist.levelize() {
            diags.lint(self.name(), e.to_string());
        }
        Ok(PassOutcome::Clean)
    }
}

/// Fanout-cap check: reports nets whose sink count exceeds a cap. High
/// fanout is not an error in this IR, but runaway fanout in a generated
/// netlist usually means a broken generator (e.g. a trigger tapping far
/// more nets than specified).
#[derive(Debug, Clone, Copy)]
pub struct CheckFanout {
    cap: usize,
}

impl CheckFanout {
    /// The default cap, chosen comfortably above the AES structural
    /// netlist's worst net (the global `load` enable) so real designs
    /// lint clean.
    pub const DEFAULT_CAP: usize = 1024;

    /// A check with a custom fanout cap.
    pub fn with_cap(cap: usize) -> Self {
        CheckFanout { cap }
    }
}

impl Default for CheckFanout {
    fn default() -> Self {
        CheckFanout {
            cap: Self::DEFAULT_CAP,
        }
    }
}

impl Pass for CheckFanout {
    fn name(&self) -> &'static str {
        "check_fanout"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        diags.record_run(self.name());
        for (id, net) in netlist.nets() {
            let fanout = net.fanout();
            if fanout > self.cap {
                diags.lint(
                    self.name(),
                    format!(
                        "net {id} `{}` fans out to {fanout} sinks (cap {})",
                        net.name(),
                        self.cap
                    ),
                );
            }
        }
        Ok(PassOutcome::Clean)
    }
}

#[cfg(test)]
mod tests {
    use super::super::PassManager;
    use super::*;
    use crate::cell::LutMask;

    #[test]
    fn open_dff_and_floating_net_are_linted() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let (_ff, _q) = nl.add_dff_uninit("open"); // D never connected
        let float = nl.add_net("floating");
        let mask = LutMask::from_fn(2, |r| r & 1 == 1);
        let y = nl.add_lut(&[a, float], mask).unwrap();
        nl.add_output("y", y).unwrap();
        let report = PassManager::lints().run(&nl).unwrap();
        let msgs: Vec<String> = report
            .diagnostics
            .lints()
            .iter()
            .map(|l| l.to_string())
            .collect();
        assert!(
            msgs.iter().any(|m| m.contains("unconnected D")),
            "missing open-DFF lint in {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("no driver")),
            "missing floating-net lint in {msgs:?}"
        );
        assert!(!report.diagnostics.is_clean());
    }

    #[test]
    fn comb_loop_is_linted_not_fatal() {
        let mut nl = Netlist::new("loop");
        let fwd = nl.add_net("fwd");
        let mask = LutMask::from_fn(1, |r| r & 1 == 0);
        let back = nl.add_lut(&[fwd], mask).unwrap();
        // Close the cycle: a second inverter drives `fwd` from `back`.
        nl.add_lut_to(fwd, &[back], mask, "close".into()).unwrap();
        nl.add_output("o", back).unwrap();
        assert!(nl.levelize().is_err(), "test needs a real cycle");
        let report = PassManager::new()
            .with_pass(CheckCombLoops)
            .run(&nl)
            .unwrap();
        assert_eq!(report.diagnostics.lints().len(), 1);
        assert!(report.diagnostics.lints()[0]
            .message
            .contains("combinational cycle"));
    }

    #[test]
    fn fanout_cap_is_enforced() {
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        for i in 0..5 {
            let x = nl.not_gate(a);
            nl.add_output(format!("o{i}"), x).unwrap();
        }
        let report = PassManager::new()
            .with_pass(CheckFanout::with_cap(3))
            .run(&nl)
            .unwrap();
        assert_eq!(report.diagnostics.lints().len(), 1);
        assert!(report.diagnostics.lints()[0].message.contains("cap 3"));
        let clean = PassManager::new()
            .with_pass(CheckFanout::with_cap(100))
            .run(&nl)
            .unwrap();
        assert!(clean.diagnostics.is_clean());
    }
}
