//! The shared rewrite kernel behind every structural optimization pass.
//!
//! All rewrite passes are projections of one algorithm: analyse the
//! netlist on its original ids, then rebuild a fresh netlist emitting
//! only what survives. [`RewriteOptions`] selects which transformations
//! the rebuild applies; with every option enabled the kernel executes
//! the exact statement sequence of the legacy monolithic optimizer, which
//! is what pins [`Netlist::optimize`](crate::Netlist::optimize) (the
//! canned pipeline) bit-identical to its historical output.

use crate::cell::{CellKind, LutMask};
use crate::opt::Optimized;
use crate::{CellId, NetId, Netlist, NetlistError};

/// Which constant information the rebuild may exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConstantMode {
    /// Constants are preserved as cells and never folded into logic.
    Off,
    /// Only literal constant cells fold into their immediate readers
    /// (one level, no transitive dataflow).
    Local,
    /// Full forward dataflow: any net provably constant over every
    /// input/state assignment folds.
    Full,
}

/// Transformation selection for [`rewrite`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RewriteOptions {
    /// Constant folding depth.
    pub constants: ConstantMode,
    /// Drop LUTs whose output never reaches a port or flip-flop D pin.
    pub eliminate_dead: bool,
    /// Alias 1-input identity LUTs to their source net.
    pub sweep_buffers: bool,
    /// Drop input pins the (restricted) function does not depend on.
    pub drop_ignored_pins: bool,
    /// Group equal-signal pins, canonicalise input order and merge
    /// duplicate functions (CSE).
    pub merge_duplicates: bool,
}

impl RewriteOptions {
    /// Every transformation enabled: the legacy `optimize_once` algorithm.
    pub(crate) const FULL: RewriteOptions = RewriteOptions {
        constants: ConstantMode::Full,
        eliminate_dead: true,
        sweep_buffers: true,
        drop_ignored_pins: true,
        merge_duplicates: true,
    };
}

/// One analysis + rebuild sweep under the given options.
///
/// With [`RewriteOptions::FULL`] this is the legacy `optimize_once`,
/// statement for statement; narrower option sets skip transformations
/// but keep the same emission order, so every projection stays
/// deterministic.
pub(crate) fn rewrite(nl: &Netlist, opts: &RewriteOptions) -> Result<Optimized, NetlistError> {
    // `fold` gates whether constant values may be folded into LUT masks;
    // when off, constant cells must be materialised up front so LUT
    // inputs can reference their nets.
    let fold = opts.constants != ConstantMode::Off;
    let known = match opts.constants {
        ConstantMode::Full => constant_analysis(nl),
        _ => const_cells_only(nl),
    };
    let live = if opts.eliminate_dead {
        liveness(nl, &known)
    } else {
        vec![true; nl.cell_count()]
    };

    let mut out = Netlist::new(nl.name().to_string());
    let mut cell_map: Vec<Option<CellId>> = vec![None; nl.cell_count()];
    let mut net_map: Vec<Option<NetId>> = vec![None; nl.net_count()];

    // Pass 1: ports, flip-flops (uninit) and — only when folding is off —
    // constant cells. When folding is on, constants are created on demand
    // during LUT emission, preserving the legacy net-id assignment order.
    for (id, cell) in nl.cells() {
        match cell.kind() {
            CellKind::Input => {
                let new_net = out.add_input(cell.name().to_string());
                let old_net = cell.output().expect("input drives a net");
                net_map[old_net.index()] = Some(new_net);
                cell_map[id.index()] = Some(out.net(new_net).driver().expect("input just created"));
            }
            CellKind::Dff => {
                let (new_cell, new_q) = out.add_dff_uninit(cell.name().to_string());
                let old_q = cell.output().expect("dff drives q");
                net_map[old_q.index()] = Some(new_q);
                cell_map[id.index()] = Some(new_cell);
            }
            CellKind::Const(v) if !fold => {
                let old_net = cell.output().expect("const drives a net");
                net_map[old_net.index()] = Some(out.const_net(v));
            }
            _ => {}
        }
    }

    // LUTs are emitted in topological order, so non-constant inputs are
    // already mapped when requested.
    // Common-subexpression table: canonicalised (mask, inputs) → net.
    let mut cse: std::collections::HashMap<(u64, Vec<NetId>), NetId> =
        std::collections::HashMap::new();
    let levels = nl.levelize()?;
    for &cell_id in levels.order() {
        let cell = nl.cell(cell_id);
        let CellKind::Lut(mask) = cell.kind() else {
            continue;
        };
        let out_net = cell.output().expect("lut drives a net");
        if let Some(v) = known[out_net.index()] {
            // Constant-folded away: route users to the constant net (even
            // if the cone is otherwise dead — ports may observe the
            // constant). Unreachable when folding is off: `known` then
            // only covers constant-cell outputs, which LUTs never drive.
            net_map[out_net.index()] = Some(out.const_net(v));
            continue;
        }
        if !live[cell_id.index()] {
            continue; // dead logic
        }
        // Restrict the function to the known input values, then drop the
        // unknown pins the *restricted* function ignores (a pin can look
        // live in the full mask only through rows the known constants
        // rule out — judging on the restriction makes one pass a
        // fixpoint).
        let mut base_row = 0u64;
        if fold {
            for (pin, &inp) in cell.inputs().iter().enumerate() {
                if let Some(v) = known[inp.index()] {
                    base_row |= (v as u64) << pin;
                }
            }
        }
        // Group the unknown pins by their *mapped* source net: pins tied
        // to the same signal (directly, or through swept buffers) always
        // carry equal values, so the function is analysed over distinct
        // signals, not raw pins. Without `merge_duplicates` every pin
        // keeps its own group (conservative but correct).
        let mut groups: Vec<(NetId, Vec<usize>)> = Vec::new();
        for (pin, &inp) in cell.inputs().iter().enumerate() {
            if fold && known[inp.index()].is_some() {
                continue;
            }
            // An unmapped input means its driver was proven dead, which
            // liveness only allows when this pin cannot affect the output
            // in any row — safe to treat as constant 0.
            let Some(mapped) = net_map[inp.index()] else {
                continue;
            };
            let merged = opts
                .merge_duplicates
                .then(|| groups.iter_mut().find(|(n, _)| *n == mapped))
                .flatten();
            match merged {
                Some((_, pins)) => pins.push(pin),
                None => groups.push((mapped, vec![pin])),
            }
        }
        let restricted = LutMask::from_fn(groups.len(), |row| {
            let mut full_row = base_row;
            for (g, (_, pins)) in groups.iter().enumerate() {
                if (row >> g) & 1 == 1 {
                    for &pin in pins {
                        full_row |= 1 << pin;
                    }
                }
            }
            mask.eval_row(full_row)
        });
        let kept: Vec<usize> = if opts.drop_ignored_pins {
            (0..groups.len())
                .filter(|&i| restricted.depends_on(groups.len(), i))
                .collect()
        } else {
            (0..groups.len()).collect()
        };
        if kept.is_empty() {
            // Constant over the reachable input space (constant analysis
            // should have caught this, but stay defensive).
            let v = restricted.eval_row(0);
            net_map[out_net.index()] = Some(out.const_net(v));
            continue;
        }
        let folded_mask =
            LutMask::from_fn(kept.len(), |row| restricted.eval_row(spread(row, &kept)));
        // `groups` already carries new-netlist ids.
        let new_inputs: Vec<NetId> = kept.iter().map(|&i| groups[i].0).collect();
        // Buffer sweep: a 1-input identity LUT forwards its input.
        if opts.sweep_buffers && new_inputs.len() == 1 && folded_mask.raw() == 0b10 {
            net_map[out_net.index()] = Some(new_inputs[0]);
            continue;
        }
        // Canonicalise: sort inputs by net id, permuting the mask rows to
        // match, so commutative duplicates collide in CSE.
        let (sorted_inputs, canon_mask) = if opts.merge_duplicates {
            let mut order: Vec<usize> = (0..new_inputs.len()).collect();
            order.sort_by_key(|&i| new_inputs[i]);
            let sorted_inputs: Vec<NetId> = order.iter().map(|&i| new_inputs[i]).collect();
            let canon_mask = LutMask::from_fn(sorted_inputs.len(), |row| {
                // row indexes the sorted pins; rebuild the original row.
                let mut orig = 0u64;
                for (new_pin, &old_pin) in order.iter().enumerate() {
                    orig |= ((row >> new_pin) & 1) << old_pin;
                }
                folded_mask.eval_row(orig)
            });
            (sorted_inputs, canon_mask)
        } else {
            (new_inputs, folded_mask)
        };
        // Common-subexpression elimination: an identical function of
        // identical signals already exists → reuse its net.
        if opts.merge_duplicates {
            let key = (canon_mask.raw(), sorted_inputs.clone());
            if let Some(&existing) = cse.get(&key) {
                net_map[out_net.index()] = Some(existing);
                continue;
            }
            let new_net = out.add_lut_named(&sorted_inputs, canon_mask, cell.name().to_string())?;
            cse.insert(key, new_net);
            net_map[out_net.index()] = Some(new_net);
            cell_map[cell_id.index()] = out.net(new_net).driver();
        } else {
            let new_net = out.add_lut_named(&sorted_inputs, canon_mask, cell.name().to_string())?;
            net_map[out_net.index()] = Some(new_net);
            cell_map[cell_id.index()] = out.net(new_net).driver();
        }
    }

    // Map constant-driver nets that anything might still reference.
    for (id, cell) in nl.cells() {
        if let CellKind::Const(v) = cell.kind() {
            let old_net = cell.output().expect("const drives a net");
            if net_map[old_net.index()].is_none() {
                net_map[old_net.index()] = Some(out.const_net(v));
            }
            cell_map[id.index()] = out.net(net_map[old_net.index()].unwrap()).driver();
        }
    }

    // Pass 2: connect flip-flop D pins and output ports.
    for (id, cell) in nl.cells() {
        match cell.kind() {
            CellKind::Dff => {
                let d_old = cell.inputs()[0];
                let d_new = match net_map[d_old.index()] {
                    Some(n) => n,
                    None => {
                        // D was driven by dead-but-known logic.
                        let v = known[d_old.index()].unwrap_or(false);
                        out.const_net(v)
                    }
                };
                let new_cell = cell_map[id.index()].expect("dff preserved");
                out.connect_dff_d(new_cell, d_new)?;
            }
            CellKind::Output => {
                let src_old = cell.inputs()[0];
                let src_new = match net_map[src_old.index()] {
                    Some(n) => n,
                    None => {
                        let v = known[src_old.index()].unwrap_or(false);
                        out.const_net(v)
                    }
                };
                let new_cell = out.add_output(cell.name().to_string(), src_new)?;
                cell_map[id.index()] = Some(new_cell);
            }
            _ => {}
        }
    }

    Ok(Optimized {
        netlist: out,
        cell_map,
        net_map,
    })
}

/// Per-net constant analysis: `Some(v)` if the net provably always
/// carries `v` regardless of inputs and state.
pub(crate) fn constant_analysis(nl: &Netlist) -> Vec<Option<bool>> {
    let mut known = const_cells_only(nl);
    let Ok(levels) = nl.levelize() else {
        return known;
    };
    for &cell_id in levels.order() {
        let cell = nl.cell(cell_id);
        let CellKind::Lut(mask) = cell.kind() else {
            continue;
        };
        // Enumerate the mask restricted to unknown pins; constant iff the
        // output is identical for every assignment.
        let unknown_pins: Vec<usize> = cell
            .inputs()
            .iter()
            .enumerate()
            .filter(|(_, &n)| known[n.index()].is_none())
            .map(|(p, _)| p)
            .collect();
        let mut base_row = 0u64;
        for (pin, &inp) in cell.inputs().iter().enumerate() {
            if let Some(v) = known[inp.index()] {
                base_row |= (v as u64) << pin;
            }
        }
        let n_assign = 1u64 << unknown_pins.len();
        let first = mask.eval_row(base_row | spread(0, &unknown_pins));
        let constant =
            (1..n_assign).all(|a| mask.eval_row(base_row | spread(a, &unknown_pins)) == first);
        if constant {
            known[cell.output().expect("lut drives a net").index()] = Some(first);
        }
    }
    known
}

/// The trivial constant map: only literal constant cells are known.
pub(crate) fn const_cells_only(nl: &Netlist) -> Vec<Option<bool>> {
    let mut known: Vec<Option<bool>> = vec![None; nl.net_count()];
    for (_, cell) in nl.cells() {
        if let CellKind::Const(v) = cell.kind() {
            known[cell.output().expect("const drives a net").index()] = Some(v);
        }
    }
    known
}

/// Liveness: a LUT is live if its output transitively reaches an output
/// port or a flip-flop `D` pin through non-constant logic.
pub(crate) fn liveness(nl: &Netlist, known: &[Option<bool>]) -> Vec<bool> {
    let mut live = vec![false; nl.cell_count()];
    let mut stack: Vec<NetId> = Vec::new();
    for (_, cell) in nl.cells() {
        match cell.kind() {
            CellKind::Output | CellKind::Dff => {
                if let Some(&d) = cell.inputs().first() {
                    stack.push(d);
                }
            }
            _ => {}
        }
    }
    let mut seen_net = vec![false; nl.net_count()];
    while let Some(net) = stack.pop() {
        if seen_net[net.index()] {
            continue;
        }
        seen_net[net.index()] = true;
        if known[net.index()].is_some() {
            continue; // constant nets need no driver logic
        }
        let Some(driver) = nl.net(net).driver() else {
            continue;
        };
        let cell = nl.cell(driver);
        if let CellKind::Lut(mask) = cell.kind() {
            live[driver.index()] = true;
            let width = cell.inputs().len();
            for (pin, &inp) in cell.inputs().iter().enumerate() {
                if mask.depends_on(width, pin) {
                    stack.push(inp);
                }
            }
        }
    }
    live
}

/// Spreads the low bits of `value` onto the given pin positions.
pub(crate) fn spread(value: u64, pins: &[usize]) -> u64 {
    let mut row = 0u64;
    for (i, &pin) in pins.iter().enumerate() {
        row |= ((value >> i) & 1) << pin;
    }
    row
}
