//! The structural rewrite passes.
//!
//! Each pass is a projection of the shared rebuild kernel
//! ([`kernel::rewrite`](super::kernel)): same analysis and emission
//! order, different transformation selection. [`FullOptimize`] enables
//! everything at once and is the canned pipeline behind
//! [`Netlist::optimize`](crate::Netlist::optimize); the granular passes
//! exist for composition and for detection-side structural analysis,
//! where running one transformation at a time keeps cause and effect
//! attributable.

use super::kernel::{self, ConstantMode, RewriteOptions};
use super::{Diagnostics, Pass, PassOutcome};
use crate::{Netlist, NetlistError};

fn run_kernel(
    name: &'static str,
    opts: &RewriteOptions,
    nl: &Netlist,
    diags: &mut Diagnostics,
) -> Result<PassOutcome, NetlistError> {
    diags.record_run(name);
    let opt = kernel::rewrite(nl, opts)?;
    diags.record_rewrite(name, nl, &opt.netlist);
    Ok(PassOutcome::Rewritten(opt))
}

/// The fused optimizer: constant propagation, constant-buffer
/// elimination, dead/undriven-net elimination, unused-pin dropping,
/// buffer sweeping and duplicate merging applied jointly in one rebuild
/// per sweep — the legacy `optimize_once` algorithm, bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullOptimize;

impl Pass for FullOptimize {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        run_kernel(self.name(), &RewriteOptions::FULL, netlist, diags)
    }
}

/// Full forward constant dataflow: any net provably constant over every
/// input/state assignment folds to a constant, and surviving LUTs are
/// re-expressed over their non-constant inputs only.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantPropagation;

impl Pass for ConstantPropagation {
    fn name(&self) -> &'static str {
        "constant_propagation"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        let opts = RewriteOptions {
            constants: ConstantMode::Full,
            eliminate_dead: false,
            sweep_buffers: false,
            drop_ignored_pins: false,
            merge_duplicates: false,
        };
        run_kernel(self.name(), &opts, netlist, diags)
    }
}

/// One-level constant folding: LUTs buffering literal constant cells
/// (wholly or per-pin) are simplified or eliminated, without the
/// transitive dataflow of [`ConstantPropagation`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantBufferElimination;

impl Pass for ConstantBufferElimination {
    fn name(&self) -> &'static str {
        "constant_buffer_elimination"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        let opts = RewriteOptions {
            constants: ConstantMode::Local,
            eliminate_dead: false,
            sweep_buffers: false,
            drop_ignored_pins: false,
            merge_duplicates: false,
        };
        run_kernel(self.name(), &opts, netlist, diags)
    }
}

/// Dead and undriven-net elimination: LUTs whose output never reaches an
/// output port or a flip-flop D pin are dropped, and nets without any
/// surviving reader vanish in the rebuild.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadNetElimination;

impl Pass for DeadNetElimination {
    fn name(&self) -> &'static str {
        "dead_net_elimination"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        let opts = RewriteOptions {
            constants: ConstantMode::Off,
            eliminate_dead: true,
            sweep_buffers: false,
            drop_ignored_pins: false,
            merge_duplicates: false,
        };
        run_kernel(self.name(), &opts, netlist, diags)
    }
}

/// Unused-buffer removal: input pins the LUT mask ignores are dropped,
/// and the 1-input identity LUTs that remain (explicit buffers) are
/// swept by aliasing their output to their source net.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnusedBufferRemoval;

impl Pass for UnusedBufferRemoval {
    fn name(&self) -> &'static str {
        "unused_buffer_removal"
    }

    fn run(&self, netlist: &Netlist, diags: &mut Diagnostics) -> Result<PassOutcome, NetlistError> {
        let opts = RewriteOptions {
            constants: ConstantMode::Off,
            eliminate_dead: false,
            sweep_buffers: true,
            drop_ignored_pins: true,
            merge_duplicates: false,
        };
        run_kernel(self.name(), &opts, netlist, diags)
    }
}

#[cfg(test)]
mod tests {
    use super::super::PassManager;
    use super::*;
    use crate::cell::LutMask;

    fn run_one(pass: impl Pass + 'static, nl: &Netlist) -> crate::opt::Optimized {
        PassManager::new()
            .with_pass(pass)
            .run(nl)
            .unwrap()
            .optimized
    }

    #[test]
    fn constant_propagation_folds_transitively() {
        let mut nl = Netlist::new("cp");
        let a = nl.add_input("a");
        let f = nl.const_net(false);
        let x = nl.and2(a, f); // always 0
        let y = nl.or2(x, a); // = a, via the folded x
        nl.add_output("y", y).unwrap();
        let opt = run_one(ConstantPropagation, &nl);
        // x folds to the constant; y becomes a 1-input LUT of a (the
        // pass does not sweep buffers, so exactly one LUT survives).
        assert_eq!(opt.netlist.stats().luts, 1);
        assert!(opt.net(x).is_some());
    }

    #[test]
    fn constant_buffer_elimination_is_local_only() {
        let mut nl = Netlist::new("cbe");
        let a = nl.add_input("a");
        let t = nl.const_net(true);
        let f = nl.const_net(false);
        let c = nl.and2(t, f); // constant buffer: folds locally
        let x = nl.or2(c, a); // reads the folded constant: only the
                              // *next* sweep can fold through it
        nl.add_output("x", x).unwrap();
        let opt = run_one(ConstantBufferElimination, &nl);
        // `c` is gone; `x` eventually simplifies over the constant at
        // fixpoint. Behaviour must match the original.
        assert!(opt.netlist.stats().luts <= 1);
        for va in [false, true] {
            let mut s0 = nl.simulator().unwrap();
            s0.set(a, va);
            s0.settle();
            let want = s0.get(x);
            let mut s1 = opt.netlist.simulator().unwrap();
            s1.set(opt.net(a).unwrap(), va);
            s1.settle();
            assert_eq!(s1.get(opt.net(x).unwrap()), want);
        }
    }

    #[test]
    fn dead_net_elimination_preserves_live_logic_exactly() {
        let mut nl = Netlist::new("dne");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let keep = nl.xor2(a, b);
        let dead = nl.and2(a, b); // drives nothing
        let _dead2 = nl.or2(dead, a);
        nl.add_output("k", keep).unwrap();
        let opt = run_one(DeadNetElimination, &nl);
        assert_eq!(opt.netlist.stats().luts, 1);
        assert!(opt.net(keep).is_some());
        assert!(opt.net(dead).is_none());
    }

    #[test]
    fn unused_buffer_removal_sweeps_buffers_and_dead_pins() {
        let mut nl = Netlist::new("ubr");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let buf = nl.buf_gate(a);
        // f(buf, b) = buf — pin b is ignored by the mask.
        let mask = LutMask::from_fn(2, |r| r & 1 == 1);
        let y = nl.add_lut(&[buf, b], mask).unwrap();
        nl.add_output("y", y).unwrap();
        let opt = run_one(UnusedBufferRemoval, &nl);
        assert_eq!(opt.netlist.stats().luts, 0);
        assert_eq!(opt.net(y), opt.net(a));
        assert_eq!(opt.net(buf), opt.net(a));
    }

    #[test]
    fn granular_passes_leave_constants_for_each_other() {
        // DeadNetElimination alone must not fold constants: the const
        // cell survives as a cell.
        let mut nl = Netlist::new("keep-const");
        let t = nl.const_net(true);
        let a = nl.add_input("a");
        let x = nl.and2(a, t);
        nl.add_output("x", x).unwrap();
        let opt = run_one(DeadNetElimination, &nl);
        assert_eq!(opt.netlist.stats().consts, 1);
        assert_eq!(opt.netlist.stats().luts, 1);
    }
}
