//! The [`Netlist`] container and its construction API.

use crate::cell::{Cell, CellKind, LutMask};
use crate::net::Net;
use crate::sim::Simulator;
use crate::stats::NetlistStats;
use crate::topo::Levelization;
use crate::{CellId, NetId, NetlistError};

/// A flat, LUT-mapped gate-level netlist with one implicit clock domain.
///
/// Cells and nets are created through the `add_*` methods and never removed,
/// so all ids stay valid. Single-driver-per-net is enforced at construction
/// time; combinational cycles are detected by [`Netlist::levelize`] /
/// [`Netlist::validate`].
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    inputs: Vec<CellId>,
    outputs: Vec<CellId>,
    consts: [Option<NetId>; 2],
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            consts: [None, None],
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Raw construction
    // ------------------------------------------------------------------

    /// Adds a floating net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            driver: None,
            sinks: Vec::new(),
            name: name.into(),
        });
        id
    }

    fn push_cell(
        &mut self,
        kind: CellKind,
        inputs: Vec<NetId>,
        output: Option<NetId>,
        name: String,
    ) -> Result<CellId, NetlistError> {
        for &net in inputs.iter().chain(output.iter()) {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet { net });
            }
        }
        let id = CellId(self.cells.len() as u32);
        if let Some(out) = output {
            let net = &mut self.nets[out.index()];
            if let Some(first) = net.driver {
                return Err(NetlistError::MultipleDrivers {
                    net: out,
                    first,
                    second: id,
                });
            }
            net.driver = Some(id);
        }
        for &input in &inputs {
            self.nets[input.index()].sinks.push(id);
        }
        self.cells.push(Cell {
            kind,
            inputs,
            output,
            name,
        });
        Ok(id)
    }

    /// Adds a top-level input port and returns the net it drives.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let net = self.add_net(name.clone());
        let cell = self
            .push_cell(CellKind::Input, Vec::new(), Some(net), name)
            .expect("fresh net cannot be doubly driven");
        self.inputs.push(cell);
        net
    }

    /// Adds a top-level output port observing `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `net` does not exist.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        net: NetId,
    ) -> Result<CellId, NetlistError> {
        let cell = self.push_cell(CellKind::Output, vec![net], None, name.into())?;
        self.outputs.push(cell);
        Ok(cell)
    }

    /// Returns the net for a constant `value`, creating the driver cell on
    /// first use (constants are deduplicated).
    pub fn const_net(&mut self, value: bool) -> NetId {
        if let Some(net) = self.consts[value as usize] {
            return net;
        }
        let name = if value { "vcc" } else { "gnd" };
        let net = self.add_net(name);
        self.push_cell(
            CellKind::Const(value),
            Vec::new(),
            Some(net),
            name.to_string(),
        )
        .expect("fresh net cannot be doubly driven");
        self.consts[value as usize] = Some(net);
        net
    }

    /// Adds a LUT driving a fresh net and returns that net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyLut`] for zero inputs,
    /// [`NetlistError::LutTooWide`] for more than six, and
    /// [`NetlistError::UnknownNet`] for dangling input ids.
    pub fn add_lut(&mut self, inputs: &[NetId], mask: LutMask) -> Result<NetId, NetlistError> {
        self.add_lut_named(inputs, mask, format!("lut{}", self.cells.len()))
    }

    /// Adds a named LUT driving a fresh net and returns that net.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_lut`].
    pub fn add_lut_named(
        &mut self,
        inputs: &[NetId],
        mask: LutMask,
        name: impl Into<String>,
    ) -> Result<NetId, NetlistError> {
        if inputs.is_empty() {
            return Err(NetlistError::EmptyLut);
        }
        if inputs.len() > LutMask::MAX_INPUTS {
            return Err(NetlistError::LutTooWide {
                inputs: inputs.len(),
            });
        }
        let name = name.into();
        let out = self.add_net(name.clone());
        self.push_cell(CellKind::Lut(mask), inputs.to_vec(), Some(out), name)?;
        Ok(out)
    }

    /// Adds a D flip-flop sampling `d` and returns its `Q` net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `d` does not exist.
    pub fn add_dff(&mut self, d: NetId, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        let q = self.add_net(format!("{name}.q"));
        self.push_cell(CellKind::Dff, vec![d], Some(q), name)?;
        Ok(q)
    }

    /// Adds a D flip-flop whose `D` pin will be connected later with
    /// [`Netlist::connect_dff_d`], returning `(cell, q)`.
    ///
    /// This is how sequential feedback loops (state registers feeding the
    /// logic that computes their own next value) are built: create the
    /// flip-flop first, use its `Q` net in the logic, then close the loop.
    pub fn add_dff_uninit(&mut self, name: impl Into<String>) -> (CellId, NetId) {
        let name = name.into();
        let q = self.add_net(format!("{name}.q"));
        let cell = self
            .push_cell(CellKind::Dff, Vec::new(), Some(q), name)
            .expect("fresh net cannot be doubly driven");
        (cell, q)
    }

    /// Connects the `D` pin of a flip-flop created with
    /// [`Netlist::add_dff_uninit`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAnOpenDff`] if `dff` is not a flip-flop or
    /// already has its `D` connected, and [`NetlistError::UnknownNet`] if
    /// `d` does not exist.
    pub fn connect_dff_d(&mut self, dff: CellId, d: NetId) -> Result<(), NetlistError> {
        if d.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet { net: d });
        }
        let cell = self
            .cells
            .get_mut(dff.index())
            .ok_or(NetlistError::NotAnOpenDff { cell: dff })?;
        if !cell.kind.is_dff() || !cell.inputs.is_empty() {
            return Err(NetlistError::NotAnOpenDff { cell: dff });
        }
        cell.inputs.push(d);
        self.nets[d.index()].sinks.push(dff);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Raw reconstruction plumbing (crate-internal; used by the `htdnet`
    // text parser to rebuild cells onto pre-declared nets). The public
    // builder API never drives an already-existing net, which is what
    // makes combinational cycles unrepresentable through it; parsed input
    // is instead checked by `validate`.
    // ------------------------------------------------------------------

    pub(crate) fn add_port_input_to(
        &mut self,
        net: NetId,
        name: String,
    ) -> Result<CellId, NetlistError> {
        let cell = self.push_cell(CellKind::Input, Vec::new(), Some(net), name)?;
        self.inputs.push(cell);
        Ok(cell)
    }

    pub(crate) fn add_const_to(&mut self, net: NetId, value: bool) -> Result<CellId, NetlistError> {
        let name = if value { "vcc" } else { "gnd" };
        let cell = self.push_cell(CellKind::Const(value), Vec::new(), Some(net), name.into())?;
        if self.consts[value as usize].is_none() {
            self.consts[value as usize] = Some(net);
        }
        Ok(cell)
    }

    pub(crate) fn add_lut_to(
        &mut self,
        out: NetId,
        inputs: &[NetId],
        mask: crate::LutMask,
        name: String,
    ) -> Result<CellId, NetlistError> {
        if inputs.is_empty() {
            return Err(NetlistError::EmptyLut);
        }
        if inputs.len() > crate::LutMask::MAX_INPUTS {
            return Err(NetlistError::LutTooWide {
                inputs: inputs.len(),
            });
        }
        self.push_cell(CellKind::Lut(mask), inputs.to_vec(), Some(out), name)
    }

    pub(crate) fn add_dff_to(&mut self, q: NetId, name: String) -> Result<CellId, NetlistError> {
        self.push_cell(CellKind::Dff, Vec::new(), Some(q), name)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Number of cells (including ports and constants).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Iterates over `(id, cell)` pairs in creation order.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over `(id, net)` pairs in creation order.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Top-level input port cells, in declaration order.
    pub fn input_cells(&self) -> &[CellId] {
        &self.inputs
    }

    /// Top-level output port cells, in declaration order.
    pub fn output_cells(&self) -> &[CellId] {
        &self.outputs
    }

    /// Nets driven by the top-level input ports, in declaration order.
    pub fn input_nets(&self) -> Vec<NetId> {
        self.inputs
            .iter()
            .map(|&c| self.cells[c.index()].output.expect("input drives a net"))
            .collect()
    }

    /// Nets observed by the top-level output ports, in declaration order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.outputs
            .iter()
            .map(|&c| self.cells[c.index()].inputs[0])
            .collect()
    }

    /// Iterates over the D flip-flop cells.
    pub fn dff_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells().filter(|(_, c)| c.kind.is_dff())
    }

    /// Aggregate statistics (cell counts, fan-out, LUT width histogram).
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::of(self)
    }

    // ------------------------------------------------------------------
    // Analysis entry points
    // ------------------------------------------------------------------

    /// Computes a combinational levelization (topological order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the LUT network
    /// contains a cycle not broken by a flip-flop.
    pub fn levelize(&self) -> Result<Levelization, NetlistError> {
        Levelization::of(self)
    }

    /// Validates structural invariants: every sink-connected net has a
    /// driver, and the combinational network is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FloatingNet`] or
    /// [`NetlistError::CombinationalCycle`] on the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, net) in self.nets() {
            if net.driver.is_none() && !net.sinks.is_empty() {
                return Err(NetlistError::FloatingNet { net: id });
            }
        }
        for (id, cell) in self.cells() {
            if cell.kind.is_dff() && cell.inputs.is_empty() {
                return Err(NetlistError::UnconnectedDff { cell: id });
            }
        }
        self.levelize().map(|_| ())
    }

    /// Creates a functional (zero-delay) simulator for this netlist.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails [`Netlist::validate`].
    pub fn simulator(&self) -> Result<Simulator<'_>, NetlistError> {
        Simulator::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_driver_is_enforced() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let out = nl.add_lut(&[a], LutMask::from_fn(1, |r| r == 0)).unwrap();
        // Manually try to drive `out` again via push_cell through add_dff on
        // a crafted net: the public API cannot alias outputs, so check the
        // internal guard directly.
        let err = nl
            .push_cell(CellKind::Const(true), Vec::new(), Some(out), "bad".into())
            .unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn unknown_net_is_rejected() {
        let mut nl = Netlist::new("t");
        let bogus = NetId::from_index(99);
        assert!(matches!(
            nl.add_output("o", bogus),
            Err(NetlistError::UnknownNet { .. })
        ));
    }

    #[test]
    fn const_nets_are_deduplicated() {
        let mut nl = Netlist::new("t");
        let a = nl.const_net(true);
        let b = nl.const_net(true);
        let c = nl.const_net(false);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(nl.cell_count(), 2);
    }

    #[test]
    fn floating_net_fails_validation() {
        let mut nl = Netlist::new("t");
        let floating = nl.add_net("f");
        nl.add_output("o", floating).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::FloatingNet { .. })
        ));
    }

    #[test]
    fn ports_are_tracked_in_order() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.add_output("oa", a).unwrap();
        nl.add_output("ob", b).unwrap();
        assert_eq!(nl.input_nets(), vec![a, b]);
        assert_eq!(nl.output_nets(), vec![a, b]);
    }

    #[test]
    fn dff_q_net_is_fresh() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r0").unwrap();
        assert_ne!(d, q);
        assert_eq!(
            nl.net(q).driver().map(|c| nl.cell(c).kind()),
            Some(CellKind::Dff)
        );
    }

    #[test]
    fn fanout_counts_pins_not_cells() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        // One LUT using `a` on two pins: fanout 2.
        let xor = LutMask::from_fn(2, |r| (r.count_ones() & 1) == 1);
        nl.add_lut(&[a, a], xor).unwrap();
        assert_eq!(nl.net(a).fanout(), 2);
    }
}
