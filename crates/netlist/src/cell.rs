//! Cell types: LUTs, flip-flops, constants and ports.

use std::fmt;

use crate::{NetId, NetlistError};

/// Truth table of a *k*-input LUT, `k ≤ 6`.
///
/// Bit `i` of the mask is the output value for the input combination whose
/// binary encoding is `i`, with input pin 0 as the least-significant bit —
/// the same convention as a Xilinx `INIT` attribute.
///
/// ```
/// use htd_netlist::LutMask;
///
/// let xor2 = LutMask::from_fn(2, |bits| (bits.count_ones() & 1) == 1);
/// assert_eq!(xor2.raw(), 0b0110);
/// assert!(xor2.eval(&[true, false]));
/// assert!(!xor2.eval(&[true, true]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LutMask(u64);

impl LutMask {
    /// Maximum number of LUT inputs supported (Virtex-5 LUT6).
    pub const MAX_INPUTS: usize = 6;

    /// Creates a mask from a raw `INIT`-style integer for a LUT with
    /// `inputs` pins. Bits above `2^inputs` are truncated.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LutTooWide`] if `inputs > 6`.
    pub fn new(inputs: usize, raw: u64) -> Result<Self, NetlistError> {
        if inputs > Self::MAX_INPUTS {
            return Err(NetlistError::LutTooWide { inputs });
        }
        let mask = if inputs == Self::MAX_INPUTS {
            raw
        } else {
            raw & ((1u64 << (1usize << inputs)) - 1)
        };
        Ok(LutMask(mask))
    }

    /// Builds a mask by evaluating `f` on every input combination.
    ///
    /// `f` receives the input row encoded as an integer: bit `i` is pin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > 6`; use [`LutMask::new`] for fallible
    /// construction from untrusted widths.
    pub fn from_fn(inputs: usize, f: impl Fn(u64) -> bool) -> Self {
        assert!(inputs <= Self::MAX_INPUTS, "LUT wider than 6 inputs");
        let rows = 1u64 << inputs;
        let mut mask = 0u64;
        for row in 0..rows {
            if f(row) {
                mask |= 1 << row;
            }
        }
        LutMask(mask)
    }

    /// Returns the raw truth-table bits.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Evaluates the LUT for the given pin values (`pins[0]` = pin 0).
    #[inline]
    pub fn eval(self, pins: &[bool]) -> bool {
        debug_assert!(pins.len() <= Self::MAX_INPUTS);
        let mut row = 0u64;
        for (i, &p) in pins.iter().enumerate() {
            row |= (p as u64) << i;
        }
        (self.0 >> row) & 1 == 1
    }

    /// Evaluates the LUT with the input row pre-encoded as an integer.
    #[inline]
    pub fn eval_row(self, row: u64) -> bool {
        (self.0 >> row) & 1 == 1
    }

    /// Returns `true` if pin `pin` can ever change the output of a LUT with
    /// `inputs` pins — i.e. the function actually depends on that pin.
    pub fn depends_on(self, inputs: usize, pin: usize) -> bool {
        debug_assert!(pin < inputs && inputs <= Self::MAX_INPUTS);
        let rows = 1u64 << inputs;
        let bit = 1u64 << pin;
        for row in 0..rows {
            if row & bit == 0 && self.eval_row(row) != self.eval_row(row | bit) {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for LutMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// The behaviour of a [`Cell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Top-level input port. No input pins; drives its output net from the
    /// environment.
    Input,
    /// Top-level output port. One input pin, no output net.
    Output,
    /// Constant driver (`false` = GND, `true` = VCC).
    Const(bool),
    /// *k*-input look-up table, `k` given by the number of connected input
    /// nets (1–6).
    Lut(LutMask),
    /// Rising-edge D flip-flop on the single implicit clock domain.
    /// Pin 0 is `D`; the output net is `Q`. Reset state is `false`.
    Dff,
}

impl CellKind {
    /// Returns `true` for purely combinational cells (LUTs and constants).
    #[inline]
    pub fn is_combinational(self) -> bool {
        matches!(self, CellKind::Lut(_) | CellKind::Const(_))
    }

    /// Returns `true` if the cell is a D flip-flop.
    #[inline]
    pub fn is_dff(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Returns `true` if the cell occupies a fabric LUT site when placed
    /// (only LUTs do; FFs occupy FF sites and ports/constants are free).
    #[inline]
    pub fn occupies_lut_site(self) -> bool {
        matches!(self, CellKind::Lut(_))
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Input => write!(f, "input"),
            CellKind::Output => write!(f, "output"),
            CellKind::Const(v) => write!(f, "const({})", if *v { 1 } else { 0 }),
            CellKind::Lut(m) => write!(f, "lut[{m}]"),
            CellKind::Dff => write!(f, "dff"),
        }
    }
}

/// One instantiated cell of a [`Netlist`](crate::Netlist).
#[derive(Debug, Clone)]
pub struct Cell {
    pub(crate) kind: CellKind,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: Option<NetId>,
    pub(crate) name: String,
}

impl Cell {
    /// The cell's behaviour.
    #[inline]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets in pin order (pin 0 first).
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this cell, if any (`Output` ports drive nothing).
    #[inline]
    pub fn output(&self) -> Option<NetId> {
        self.output
    }

    /// Instance name (unique within the netlist is *not* enforced; names
    /// are debugging aids).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_mask_from_fn_matches_eval() {
        let and3 = LutMask::from_fn(3, |r| r == 0b111);
        assert_eq!(and3.raw(), 0x80);
        assert!(and3.eval(&[true, true, true]));
        assert!(!and3.eval(&[true, true, false]));
    }

    #[test]
    fn lut_mask_truncates_high_bits() {
        let m = LutMask::new(2, 0xFFFF_FFFF).unwrap();
        assert_eq!(m.raw(), 0xF);
    }

    #[test]
    fn lut_mask_rejects_wide_luts() {
        assert!(matches!(
            LutMask::new(7, 0),
            Err(NetlistError::LutTooWide { inputs: 7 })
        ));
    }

    #[test]
    fn lut_depends_on_detects_dead_pins() {
        // f(a, b) = a  (pin 1 is dead).
        let m = LutMask::from_fn(2, |r| r & 1 == 1);
        assert!(m.depends_on(2, 0));
        assert!(!m.depends_on(2, 1));
    }

    #[test]
    fn six_input_mask_uses_full_width() {
        let all_ones = LutMask::from_fn(6, |_| true);
        assert_eq!(all_ones.raw(), u64::MAX);
        let and6 = LutMask::from_fn(6, |r| r == 63);
        assert!(and6.eval_row(63));
        assert!(!and6.eval_row(62));
    }

    #[test]
    fn kind_predicates() {
        assert!(CellKind::Lut(LutMask::from_fn(1, |r| r == 0)).is_combinational());
        assert!(CellKind::Const(true).is_combinational());
        assert!(!CellKind::Dff.is_combinational());
        assert!(CellKind::Dff.is_dff());
        assert!(CellKind::Lut(LutMask::from_fn(1, |r| r == 0)).occupies_lut_site());
        assert!(!CellKind::Input.occupies_lut_site());
    }
}
