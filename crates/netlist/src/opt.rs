//! Netlist optimization: constant folding, dead-cell elimination and
//! buffer sweeping, implemented on top of the composable pass framework
//! in [`passes`](crate::passes).
//!
//! Because [`Netlist`] ids are stable-by-construction (cells are never
//! removed in place), optimization builds a *new* netlist and returns the
//! old→new mapping, like a real EDA flow emitting a fresh database after
//! each pass.
//!
//! [`Netlist::optimize`] is a thin wrapper over the canned pipeline
//! ([`PassManager::standard`](crate::passes::PassManager::standard)) and
//! is pinned **bit-identical** to the historical monolithic optimizer: a
//! frozen copy of that implementation survives as the hidden
//! `optimize_reference` oracle, and migration-equivalence tests compare
//! the two byte for byte (serialised netlist and both id maps) on the
//! full AES netlist and a property-based corpus.

use crate::cell::{CellKind, LutMask};
use crate::passes::kernel::{self, RewriteOptions};
use crate::passes::PassManager;
use crate::{CellId, NetId, Netlist, NetlistError};

/// Result of an optimization pass: the new netlist plus id mappings.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rebuilt netlist.
    pub netlist: Netlist,
    /// For each old cell: its new id, or `None` if it was removed.
    pub cell_map: Vec<Option<CellId>>,
    /// For each old net: the new net carrying the same logical signal, or
    /// `None` if the signal vanished (dead logic).
    pub net_map: Vec<Option<NetId>>,
}

impl Optimized {
    /// Translates an old net id, if it survived.
    pub fn net(&self, old: NetId) -> Option<NetId> {
        self.net_map.get(old.index()).copied().flatten()
    }

    /// Translates an old cell id, if it survived.
    pub fn cell(&self, old: CellId) -> Option<CellId> {
        self.cell_map.get(old.index()).copied().flatten()
    }
}

impl Netlist {
    /// Runs constant folding + buffer sweeping + dead-cell elimination
    /// **until fixpoint** and returns the rebuilt netlist.
    ///
    /// This is the canned pass pipeline
    /// ([`PassManager::standard`](crate::passes::PassManager::standard)),
    /// pinned bit-identical to the historical monolithic optimizer.
    ///
    /// Guarantees:
    /// * ports and flip-flops are always preserved (sequential state and
    ///   the external interface are never optimized away);
    /// * the new netlist is functionally equivalent on every input/state;
    /// * a second `optimize` of the result changes nothing (idempotence).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from reconstruction (which indicates an
    /// internal bug, not a user error).
    pub fn optimize(&self) -> Result<Optimized, NetlistError> {
        Ok(PassManager::standard().run(self)?.optimized)
    }

    /// One optimization pass (see [`Netlist::optimize`], which iterates
    /// this to fixpoint): the fused rewrite kernel with every
    /// transformation enabled.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from reconstruction.
    pub fn optimize_once(&self) -> Result<Optimized, NetlistError> {
        kernel::rewrite(self, &RewriteOptions::FULL)
    }

    /// Frozen copy of the pre-pass-framework `optimize`, kept verbatim as
    /// the migration-equivalence oracle. Not part of the public API.
    #[doc(hidden)]
    pub fn optimize_reference(&self) -> Result<Optimized, NetlistError> {
        let mut acc = self.optimize_once_reference()?;
        // Constants discovered *during* a rebuild only reach their readers
        // on the next pass; iterate until the size stabilises.
        for _ in 0..32 {
            let before = acc.netlist.stats();
            let next = acc.netlist.optimize_once_reference()?;
            let after = next.netlist.stats();
            acc = Optimized {
                cell_map: acc
                    .cell_map
                    .iter()
                    .map(|m| m.and_then(|c| next.cell(c)))
                    .collect(),
                net_map: acc
                    .net_map
                    .iter()
                    .map(|m| m.and_then(|n| next.net(n)))
                    .collect(),
                netlist: next.netlist,
            };
            if after.luts == before.luts && after.nets == before.nets {
                break;
            }
        }
        Ok(acc)
    }

    /// Frozen copy of the pre-pass-framework `optimize_once` (see
    /// [`Netlist::optimize_reference`]). Not part of the public API.
    #[doc(hidden)]
    pub fn optimize_once_reference(&self) -> Result<Optimized, NetlistError> {
        // --- Analysis on the original ids -------------------------------
        // 1. Constant analysis: a net is Known(v) if driven by a constant
        //    or by a LUT whose inputs are all known / whose mask ignores
        //    the unknown ones.
        let known = self.constant_analysis_reference();
        // 2. Liveness: walk back from ports and flip-flop D pins.
        let live = self.liveness_reference(&known);

        // --- Rebuild -----------------------------------------------------
        let mut out = Netlist::new(self.name().to_string());
        let mut cell_map: Vec<Option<CellId>> = vec![None; self.cell_count()];
        let mut net_map: Vec<Option<NetId>> = vec![None; self.net_count()];

        // Pass 1: ports, constants (on demand), flip-flops (uninit).
        for (id, cell) in self.cells() {
            match cell.kind() {
                CellKind::Input => {
                    let new_net = out.add_input(cell.name().to_string());
                    let old_net = cell.output().expect("input drives a net");
                    net_map[old_net.index()] = Some(new_net);
                    cell_map[id.index()] =
                        Some(out.net(new_net).driver().expect("input just created"));
                }
                CellKind::Dff => {
                    let (new_cell, new_q) = out.add_dff_uninit(cell.name().to_string());
                    let old_q = cell.output().expect("dff drives q");
                    net_map[old_q.index()] = Some(new_q);
                    cell_map[id.index()] = Some(new_cell);
                }
                _ => {}
            }
        }

        // Helper to materialise a (possibly constant) old net in `out`.
        // LUTs are emitted in topological order, so non-constant inputs
        // are already mapped when requested.
        // Common-subexpression table: canonicalised (mask, inputs) → net.
        let mut cse: std::collections::HashMap<(u64, Vec<NetId>), NetId> =
            std::collections::HashMap::new();
        let levels = self.levelize()?;
        for &cell_id in levels.order() {
            let cell = self.cell(cell_id);
            let CellKind::Lut(mask) = cell.kind() else {
                continue;
            };
            let out_net = cell.output().expect("lut drives a net");
            if let Some(v) = known[out_net.index()] {
                // Constant-folded away: route users to the constant net
                // (even if the cone is otherwise dead — ports may observe
                // the constant).
                net_map[out_net.index()] = Some(out.const_net(v));
                continue;
            }
            if !live[cell_id.index()] {
                continue; // dead logic
            }
            // Restrict the function to the known input values, then drop
            // the unknown pins the *restricted* function ignores (a pin
            // can look live in the full mask only through rows the known
            // constants rule out — judging on the restriction makes one
            // pass a fixpoint).
            let mut base_row = 0u64;
            for (pin, &inp) in cell.inputs().iter().enumerate() {
                if let Some(v) = known[inp.index()] {
                    base_row |= (v as u64) << pin;
                }
            }
            // Group the unknown pins by their *mapped* source net: pins
            // tied to the same signal (directly, or through swept buffers)
            // always carry equal values, so the function is analysed over
            // distinct signals, not raw pins.
            let mut groups: Vec<(NetId, Vec<usize>)> = Vec::new();
            for (pin, &inp) in cell.inputs().iter().enumerate() {
                if known[inp.index()].is_some() {
                    continue;
                }
                // An unmapped input means its driver was proven dead,
                // which liveness only allows when this pin cannot affect
                // the output in any row — safe to treat as constant 0.
                let Some(mapped) = net_map[inp.index()] else {
                    continue;
                };
                match groups.iter_mut().find(|(n, _)| *n == mapped) {
                    Some((_, pins)) => pins.push(pin),
                    None => groups.push((mapped, vec![pin])),
                }
            }
            let restricted = LutMask::from_fn(groups.len(), |row| {
                let mut full_row = base_row;
                for (g, (_, pins)) in groups.iter().enumerate() {
                    if (row >> g) & 1 == 1 {
                        for &pin in pins {
                            full_row |= 1 << pin;
                        }
                    }
                }
                mask.eval_row(full_row)
            });
            let kept: Vec<usize> = (0..groups.len())
                .filter(|&i| restricted.depends_on(groups.len(), i))
                .collect();
            if kept.is_empty() {
                // Constant over the reachable input space (constant
                // analysis should have caught this, but stay defensive).
                let v = restricted.eval_row(0);
                net_map[out_net.index()] = Some(out.const_net(v));
                continue;
            }
            let folded_mask =
                LutMask::from_fn(kept.len(), |row| restricted.eval_row(spread(row, &kept)));
            // `groups` already carries new-netlist ids.
            let new_inputs: Vec<NetId> = kept.iter().map(|&i| groups[i].0).collect();
            // Buffer sweep: a 1-input identity LUT forwards its input.
            if new_inputs.len() == 1 && folded_mask.raw() == 0b10 {
                net_map[out_net.index()] = Some(new_inputs[0]);
                continue;
            }
            // Canonicalise: sort inputs by net id, permuting the mask
            // rows to match, so commutative duplicates collide in CSE.
            let mut order: Vec<usize> = (0..new_inputs.len()).collect();
            order.sort_by_key(|&i| new_inputs[i]);
            let sorted_inputs: Vec<NetId> = order.iter().map(|&i| new_inputs[i]).collect();
            let canon_mask = LutMask::from_fn(sorted_inputs.len(), |row| {
                // row indexes the sorted pins; rebuild the original row.
                let mut orig = 0u64;
                for (new_pin, &old_pin) in order.iter().enumerate() {
                    orig |= ((row >> new_pin) & 1) << old_pin;
                }
                folded_mask.eval_row(orig)
            });
            // Common-subexpression elimination: an identical function of
            // identical signals already exists → reuse its net.
            let key = (canon_mask.raw(), sorted_inputs.clone());
            if let Some(&existing) = cse.get(&key) {
                net_map[out_net.index()] = Some(existing);
                continue;
            }
            let new_net = out.add_lut_named(&sorted_inputs, canon_mask, cell.name().to_string())?;
            cse.insert(key, new_net);
            net_map[out_net.index()] = Some(new_net);
            cell_map[cell_id.index()] = out.net(new_net).driver();
        }

        // Map constant-driver nets that anything might still reference.
        for (id, cell) in self.cells() {
            if let CellKind::Const(v) = cell.kind() {
                let old_net = cell.output().expect("const drives a net");
                if net_map[old_net.index()].is_none() {
                    net_map[old_net.index()] = Some(out.const_net(v));
                }
                cell_map[id.index()] = out.net(net_map[old_net.index()].unwrap()).driver();
            }
        }

        // Pass 2: connect flip-flop D pins and output ports.
        for (id, cell) in self.cells() {
            match cell.kind() {
                CellKind::Dff => {
                    let d_old = cell.inputs()[0];
                    let d_new = match net_map[d_old.index()] {
                        Some(n) => n,
                        None => {
                            // D was driven by dead-but-known logic.
                            let v = known[d_old.index()].unwrap_or(false);
                            out.const_net(v)
                        }
                    };
                    let new_cell = cell_map[id.index()].expect("dff preserved");
                    out.connect_dff_d(new_cell, d_new)?;
                }
                CellKind::Output => {
                    let src_old = cell.inputs()[0];
                    let src_new = match net_map[src_old.index()] {
                        Some(n) => n,
                        None => {
                            let v = known[src_old.index()].unwrap_or(false);
                            out.const_net(v)
                        }
                    };
                    let new_cell = out.add_output(cell.name().to_string(), src_new)?;
                    cell_map[id.index()] = Some(new_cell);
                }
                _ => {}
            }
        }

        Ok(Optimized {
            netlist: out,
            cell_map,
            net_map,
        })
    }

    /// Per-net constant analysis: `Some(v)` if the net provably always
    /// carries `v` regardless of inputs and state (frozen reference
    /// copy).
    fn constant_analysis_reference(&self) -> Vec<Option<bool>> {
        let mut known: Vec<Option<bool>> = vec![None; self.net_count()];
        for (_, cell) in self.cells() {
            if let CellKind::Const(v) = cell.kind() {
                known[cell.output().expect("const drives a net").index()] = Some(v);
            }
        }
        let Ok(levels) = self.levelize() else {
            return known;
        };
        for &cell_id in levels.order() {
            let cell = self.cell(cell_id);
            let CellKind::Lut(mask) = cell.kind() else {
                continue;
            };
            // Enumerate the mask restricted to unknown pins; constant iff
            // the output is identical for every assignment.
            let unknown_pins: Vec<usize> = cell
                .inputs()
                .iter()
                .enumerate()
                .filter(|(_, &n)| known[n.index()].is_none())
                .map(|(p, _)| p)
                .collect();
            let mut base_row = 0u64;
            for (pin, &inp) in cell.inputs().iter().enumerate() {
                if let Some(v) = known[inp.index()] {
                    base_row |= (v as u64) << pin;
                }
            }
            let n_assign = 1u64 << unknown_pins.len();
            let first = mask.eval_row(base_row | spread(0, &unknown_pins));
            let constant =
                (1..n_assign).all(|a| mask.eval_row(base_row | spread(a, &unknown_pins)) == first);
            if constant {
                known[cell.output().expect("lut drives a net").index()] = Some(first);
            }
        }
        known
    }

    /// Liveness: a LUT is live if its output transitively reaches an
    /// output port or a flip-flop `D` pin through non-constant logic
    /// (frozen reference copy).
    fn liveness_reference(&self, known: &[Option<bool>]) -> Vec<bool> {
        let mut live = vec![false; self.cell_count()];
        let mut stack: Vec<NetId> = Vec::new();
        for (_, cell) in self.cells() {
            match cell.kind() {
                CellKind::Output | CellKind::Dff => {
                    if let Some(&d) = cell.inputs().first() {
                        stack.push(d);
                    }
                }
                _ => {}
            }
        }
        let mut seen_net = vec![false; self.net_count()];
        while let Some(net) = stack.pop() {
            if seen_net[net.index()] {
                continue;
            }
            seen_net[net.index()] = true;
            if known[net.index()].is_some() {
                continue; // constant nets need no driver logic
            }
            let Some(driver) = self.net(net).driver() else {
                continue;
            };
            let cell = self.cell(driver);
            if let CellKind::Lut(mask) = cell.kind() {
                live[driver.index()] = true;
                let width = cell.inputs().len();
                for (pin, &inp) in cell.inputs().iter().enumerate() {
                    if mask.depends_on(width, pin) {
                        stack.push(inp);
                    }
                }
            }
        }
        live
    }
}

/// Spreads the low bits of `value` onto the given pin positions.
fn spread(value: u64, pins: &[usize]) -> u64 {
    let mut row = 0u64;
    for (i, &pin) in pins.iter().enumerate() {
        row |= ((value >> i) & 1) << pin;
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_through_logic() {
        let mut nl = Netlist::new("fold");
        let a = nl.add_input("a");
        let t = nl.const_net(true);
        let f = nl.const_net(false);
        let x = nl.and2(a, f); // always 0
        let y = nl.or2(x, t); // always 1
        let z = nl.xor2(y, a); // = !a
        nl.add_output("z", z).unwrap();
        let opt = nl.optimize().unwrap();
        // Everything folds to a single inverter.
        assert_eq!(opt.netlist.stats().luts, 1);
        // Equivalence.
        for va in [false, true] {
            let mut s0 = nl.simulator().unwrap();
            s0.set(a, va);
            s0.settle();
            let want = s0.get(z);
            let mut s1 = opt.netlist.simulator().unwrap();
            let a_new = opt.netlist.input_nets()[0];
            s1.set(a_new, va);
            s1.settle();
            let z_new = opt.netlist.output_nets()[0];
            assert_eq!(s1.get(z_new), want, "a = {va}");
        }
    }

    #[test]
    fn dead_cones_are_removed() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let keep = nl.xor2(a, b);
        // Dead cone: drives nothing.
        let d1 = nl.and2(a, b);
        let _d2 = nl.or2(d1, a);
        nl.add_output("k", keep).unwrap();
        let opt = nl.optimize().unwrap();
        assert_eq!(opt.netlist.stats().luts, 1);
        assert!(opt.net(keep).is_some());
        assert!(opt.net(d1).is_none());
    }

    #[test]
    fn buffers_are_swept() {
        let mut nl = Netlist::new("buf");
        let a = nl.add_input("a");
        let b1 = nl.buf_gate(a);
        let b2 = nl.buf_gate(b1);
        let y = nl.not_gate(b2);
        nl.add_output("y", y).unwrap();
        let opt = nl.optimize().unwrap();
        assert_eq!(opt.netlist.stats().luts, 1);
        // The buffers' signals alias the input net.
        assert_eq!(opt.net(b1), opt.net(a));
        assert_eq!(opt.net(b2), opt.net(a));
    }

    #[test]
    fn dff_with_constant_d_is_preserved() {
        // Sequential elements are never removed, even if fed a constant.
        let mut nl = Netlist::new("seq");
        let t = nl.const_net(true);
        let q = nl.add_dff(t, "r").unwrap();
        nl.add_output("q", q).unwrap();
        let opt = nl.optimize().unwrap();
        assert_eq!(opt.netlist.stats().dffs, 1);
        let mut sim = opt.netlist.simulator().unwrap();
        sim.settle();
        sim.clock();
        assert!(sim.get(opt.net(q).unwrap()));
    }

    #[test]
    fn dead_pins_are_dropped() {
        let mut nl = Netlist::new("pins");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // f(a, b) = a — pin b is dead.
        let mask = LutMask::from_fn(2, |r| r & 1 == 1);
        let y = nl.add_lut(&[a, b], mask).unwrap();
        nl.add_output("y", y).unwrap();
        let opt = nl.optimize().unwrap();
        // The identity LUT then sweeps as a buffer: zero LUTs remain.
        assert_eq!(opt.netlist.stats().luts, 0);
        assert_eq!(opt.net(y), opt.net(a));
    }

    #[test]
    fn common_subexpressions_are_merged() {
        let mut nl = Netlist::new("cse");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // Same function twice, with commuted inputs the second time.
        let x1 = nl.xor2(a, b);
        let x2 = nl.xor2(b, a);
        let y = nl.and2(x1, x2); // == x1 since x1 == x2
        nl.add_output("y", y).unwrap();
        let opt = nl.optimize().unwrap();
        // x1/x2 merge; the AND of a net with itself sweeps to a buffer.
        assert_eq!(opt.netlist.stats().luts, 1);
        assert_eq!(opt.net(x1), opt.net(x2));
        assert_eq!(opt.net(y), opt.net(x1));
        // Behaviour preserved.
        for (va, vb) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut s = opt.netlist.simulator().unwrap();
            let ins = opt.netlist.input_nets();
            s.set(ins[0], va);
            s.set(ins[1], vb);
            s.settle();
            assert_eq!(s.get(opt.net(y).unwrap()), va ^ vb);
        }
    }

    #[test]
    fn feedback_loops_optimize_correctly() {
        // Toggle flop with a redundant buffer in the feedback path.
        let mut nl = Netlist::new("tff");
        let (dff, q) = nl.add_dff_uninit("r");
        let nq = nl.not_gate(q);
        let buffered = nl.buf_gate(nq);
        nl.connect_dff_d(dff, buffered).unwrap();
        nl.add_output("q", q).unwrap();
        let opt = nl.optimize().unwrap();
        assert_eq!(opt.netlist.stats().luts, 1); // buffer swept, inverter kept
        let mut sim = opt.netlist.simulator().unwrap();
        sim.settle();
        let q_new = opt.net(q).unwrap();
        let mut seq = Vec::new();
        for _ in 0..4 {
            seq.push(sim.get(q_new));
            sim.clock();
        }
        assert_eq!(seq, vec![false, true, false, true]);
    }

    #[test]
    fn pass_pipeline_matches_the_frozen_reference() {
        // The migration-equivalence pin, on a netlist exercising every
        // transformation at once. The heavyweight versions of this test
        // (full AES + proptest corpus) live in the aes crate and
        // tests/props.rs.
        let mut nl = Netlist::new("mix");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let t = nl.const_net(true);
        let (dff, q) = nl.add_dff_uninit("state");
        let gated = nl.and2(a, t); // folds to a
        let buf = nl.buf_gate(gated); // sweeps
        let x1 = nl.xor2(buf, b);
        let x2 = nl.xor2(b, buf); // CSE duplicate
        let d = nl.xor2(x1, q);
        nl.connect_dff_d(dff, d).unwrap();
        let dead = nl.and2(x2, q); // dead cone
        let _dead2 = nl.or2(dead, a);
        nl.add_output("x", x2).unwrap();
        nl.add_output("q", q).unwrap();

        let reference = nl.optimize_reference().unwrap();
        let pipeline = nl.optimize().unwrap();
        assert_eq!(reference.netlist.to_text(), pipeline.netlist.to_text());
        assert_eq!(reference.cell_map, pipeline.cell_map);
        assert_eq!(reference.net_map, pipeline.net_map);

        let once_ref = nl.optimize_once_reference().unwrap();
        let once = nl.optimize_once().unwrap();
        assert_eq!(once_ref.netlist.to_text(), once.netlist.to_text());
        assert_eq!(once_ref.cell_map, once.cell_map);
        assert_eq!(once_ref.net_map, once.net_map);
    }
}
