//! Aggregate netlist statistics.

use std::fmt;

use crate::{CellKind, Netlist};

/// Cell/net counts and shape metrics for a [`Netlist`].
///
/// Produced by [`Netlist::stats`]; used by the fabric placer for capacity
/// checks and by the trojan-size accounting of the paper's Section II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of LUT cells (these occupy fabric LUT sites).
    pub luts: usize,
    /// Number of D flip-flops (these occupy fabric FF sites).
    pub dffs: usize,
    /// Number of top-level input ports.
    pub inputs: usize,
    /// Number of top-level output ports.
    pub outputs: usize,
    /// Number of constant drivers.
    pub consts: usize,
    /// Total nets.
    pub nets: usize,
    /// Largest electrical fan-out over all nets.
    pub max_fanout: usize,
    /// Histogram of LUT input widths; index `k` counts `k`-input LUTs
    /// (index 0 is unused).
    pub lut_width_histogram: [usize; 7],
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            nets: netlist.net_count(),
            ..Default::default()
        };
        for (_, cell) in netlist.cells() {
            match cell.kind() {
                CellKind::Lut(_) => {
                    s.luts += 1;
                    s.lut_width_histogram[cell.inputs().len()] += 1;
                }
                CellKind::Dff => s.dffs += 1,
                CellKind::Input => s.inputs += 1,
                CellKind::Output => s.outputs += 1,
                CellKind::Const(_) => s.consts += 1,
            }
        }
        for (_, net) in netlist.nets() {
            s.max_fanout = s.max_fanout.max(net.fanout());
        }
        s
    }

    /// LUTs plus flip-flops: the resource footprint used for the paper's
    /// area percentages.
    pub fn logic_cells(&self) -> usize {
        self.luts + self.dffs
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} nets, {} inputs, {} outputs, max fanout {}",
            self.luts, self.dffs, self.nets, self.inputs, self.outputs, self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    #[test]
    fn stats_count_all_kinds() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor2(a, b);
        let q = nl.add_dff(x, "r").unwrap();
        let k = nl.const_net(true);
        let y = nl.and2(q, k);
        nl.add_output("y", y).unwrap();
        let s = nl.stats();
        assert_eq!(s.luts, 2);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.consts, 1);
        assert_eq!(s.logic_cells(), 3);
        assert_eq!(s.lut_width_histogram[2], 2);
        assert!(s.to_string().contains("2 LUTs"));
    }
}
