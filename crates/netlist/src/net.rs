//! Nets: the wires connecting cells.

use crate::CellId;

/// A single wire of the netlist.
///
/// Every net has at most one driver (enforced by
/// [`Netlist`](crate::Netlist) construction) and an ordered list of sink
/// cells. A cell appears once in `sinks` per connected input pin, so the
/// sink list length equals the net's electrical fan-out.
#[derive(Debug, Clone)]
pub struct Net {
    pub(crate) driver: Option<CellId>,
    pub(crate) sinks: Vec<CellId>,
    pub(crate) name: String,
}

impl Net {
    /// The cell driving this net, or `None` for a floating net.
    #[inline]
    pub fn driver(&self) -> Option<CellId> {
        self.driver
    }

    /// Sink cells, one entry per connected input pin (fan-out order).
    #[inline]
    pub fn sinks(&self) -> &[CellId] {
        &self.sinks
    }

    /// Electrical fan-out: the number of input pins this net drives.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }

    /// Net name (a debugging aid; uniqueness is not enforced).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }
}
