//! Combinational levelization, cycle detection and cone extraction.

use std::collections::VecDeque;

use crate::{CellId, NetId, Netlist, NetlistError};

/// Marker describing a detected combinational cycle (see
/// [`NetlistError::CombinationalCycle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombCycle {
    /// A net known to lie on the cycle.
    pub net: NetId,
}

/// A topological ordering of the combinational cells of a netlist.
///
/// Sequential elements (flip-flops) and ports break the graph: their output
/// nets are *sources* of the combinational timing graph, and flip-flop `D`
/// pins / output ports are *sinks*.
#[derive(Debug, Clone)]
pub struct Levelization {
    order: Vec<CellId>,
    level: Vec<u32>,
}

impl Levelization {
    /// Computes the levelization of `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the LUT network has a
    /// cycle not broken by a flip-flop.
    pub fn of(netlist: &Netlist) -> Result<Self, NetlistError> {
        let n_cells = netlist.cell_count();
        let mut level = vec![0u32; n_cells];
        let mut pending = vec![0u32; n_cells];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        let mut n_luts = 0usize;

        // A LUT waits for each input whose driver is another LUT;
        // ports/FFs/consts are timing-graph sources.
        for (id, cell) in netlist.cells() {
            if let crate::CellKind::Lut(_) = cell.kind() {
                n_luts += 1;
                let mut deps = 0u32;
                for &input in cell.inputs() {
                    if let Some(drv) = netlist.net(input).driver() {
                        if matches!(netlist.cell(drv).kind(), crate::CellKind::Lut(_)) {
                            deps += 1;
                        }
                    }
                }
                pending[id.index()] = deps;
                if deps == 0 {
                    queue.push_back(id);
                }
            }
        }

        while let Some(id) = queue.pop_front() {
            order.push(id);
            let out = netlist.cell(id).output().expect("lut always drives a net");
            let lvl = level[id.index()];
            for &sink in netlist.net(out).sinks() {
                if matches!(netlist.cell(sink).kind(), crate::CellKind::Lut(_)) {
                    level[sink.index()] = level[sink.index()].max(lvl + 1);
                    pending[sink.index()] -= 1;
                    if pending[sink.index()] == 0 {
                        queue.push_back(sink);
                    }
                }
            }
        }

        if order.len() != n_luts {
            // Some LUT never became ready: it is on (or behind) a cycle.
            let stuck = netlist
                .cells()
                .find(|(id, c)| {
                    matches!(c.kind(), crate::CellKind::Lut(_)) && pending[id.index()] > 0
                })
                .and_then(|(id, c)| c.output().map(|n| (id, n)));
            let net = stuck.map(|(_, n)| n).unwrap_or(NetId::from_index(0));
            return Err(NetlistError::CombinationalCycle { net });
        }

        Ok(Levelization { order, level })
    }

    /// Combinational cells in a valid evaluation order.
    pub fn order(&self) -> &[CellId] {
        &self.order
    }

    /// Logic depth (level) of a combinational cell; 0 for sources.
    pub fn level(&self, cell: CellId) -> u32 {
        self.level[cell.index()]
    }

    /// Maximum logic depth over all combinational cells.
    pub fn max_level(&self) -> u32 {
        self.order
            .iter()
            .map(|&c| self.level[c.index()])
            .max()
            .unwrap_or(0)
    }
}

impl Netlist {
    /// Collects the combinational fan-in cone of `net`: every LUT that can
    /// influence it without crossing a flip-flop, plus the source nets
    /// (port/FF/const outputs) feeding the cone.
    pub fn fanin_cone(&self, net: NetId) -> FaninCone {
        let mut seen_cells = vec![false; self.cell_count()];
        let mut seen_nets = vec![false; self.net_count()];
        let mut luts = Vec::new();
        let mut sources = Vec::new();
        let mut stack = vec![net];
        seen_nets[net.index()] = true;
        while let Some(n) = stack.pop() {
            match self.net(n).driver() {
                Some(drv) if matches!(self.cell(drv).kind(), crate::CellKind::Lut(_)) => {
                    if !seen_cells[drv.index()] {
                        seen_cells[drv.index()] = true;
                        luts.push(drv);
                        for &input in self.cell(drv).inputs() {
                            if !seen_nets[input.index()] {
                                seen_nets[input.index()] = true;
                                stack.push(input);
                            }
                        }
                    }
                }
                _ => sources.push(n),
            }
        }
        FaninCone { luts, sources }
    }

    /// Collects the combinational fan-out cone of `net`: every LUT it can
    /// influence without crossing a flip-flop.
    pub fn fanout_cone(&self, net: NetId) -> Vec<CellId> {
        let mut seen = vec![false; self.cell_count()];
        let mut cone = Vec::new();
        let mut stack: Vec<NetId> = vec![net];
        while let Some(n) = stack.pop() {
            for &sink in self.net(n).sinks() {
                if matches!(self.cell(sink).kind(), crate::CellKind::Lut(_)) && !seen[sink.index()]
                {
                    seen[sink.index()] = true;
                    cone.push(sink);
                    if let Some(out) = self.cell(sink).output() {
                        stack.push(out);
                    }
                }
            }
        }
        cone
    }
}

/// Result of [`Netlist::fanin_cone`].
#[derive(Debug, Clone)]
pub struct FaninCone {
    /// LUT cells inside the cone.
    pub luts: Vec<CellId>,
    /// Source nets feeding the cone (port / flip-flop / constant outputs,
    /// or floating nets).
    pub sources: Vec<NetId>,
}

#[cfg(test)]
mod tests {
    use crate::{LutMask, Netlist, NetlistError};

    #[test]
    fn levels_follow_depth() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor2(a, b); // level 0
        let y = nl.xor2(x, b); // level 1
        let z = nl.xor2(y, x); // level 2
        nl.add_output("z", z).unwrap();
        let lv = nl.levelize().unwrap();
        assert_eq!(lv.order().len(), 3);
        assert_eq!(lv.max_level(), 2);
        // The first element of the order must be the level-0 LUT.
        assert_eq!(lv.level(lv.order()[0]), 0);
    }

    #[test]
    fn dff_feedback_loop_is_not_a_comb_cycle() {
        // Toggle flip-flop: q -> inverter -> d of the same DFF.
        let mut nl = Netlist::new("ring");
        let (dff, q) = nl.add_dff_uninit("r");
        let nq = nl.not_gate(q);
        nl.connect_dff_d(dff, nq).unwrap();
        nl.add_output("q", q).unwrap();
        assert!(nl.validate().is_ok());
        let lv = nl.levelize().unwrap();
        assert_eq!(lv.order().len(), 1);
    }

    #[test]
    fn unconnected_dff_fails_validation() {
        let mut nl = Netlist::new("open");
        let (_dff, q) = nl.add_dff_uninit("r");
        nl.add_output("q", q).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::UnconnectedDff { .. })
        ));
    }

    #[test]
    fn floating_input_is_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let loop_net = nl.add_net("loop");
        let and_mask = LutMask::from_fn(2, |r| r == 0b11);
        let _mid = nl.add_lut(&[a, loop_net], and_mask).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::FloatingNet { .. })
        ));
    }

    #[test]
    fn fanin_cone_collects_sources_and_luts() {
        let mut nl = Netlist::new("cone");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.and2(a, b);
        let y = nl.xor2(x, c);
        let cone = nl.fanin_cone(y);
        assert_eq!(cone.luts.len(), 2);
        let mut sources = cone.sources.clone();
        sources.sort();
        assert_eq!(sources, vec![a, b, c]);
    }

    #[test]
    fn fanout_cone_stops_at_dffs() {
        let mut nl = Netlist::new("cone");
        let a = nl.add_input("a");
        let x = nl.not_gate(a);
        let q = nl.add_dff(x, "r").unwrap();
        let y = nl.not_gate(q);
        nl.add_output("y", y).unwrap();
        let cone = nl.fanout_cone(a);
        // Only the first inverter: the DFF blocks propagation.
        assert_eq!(cone.len(), 1);
    }
}
