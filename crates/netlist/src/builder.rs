//! Technology-mapper-style convenience constructors.
//!
//! These helpers emit small logic functions as LUTs and pack wide
//! XOR/AND/OR networks into balanced trees of 6-input LUTs, mimicking what
//! `xst`/`map` would produce for the same RTL. They are inherent methods on
//! [`Netlist`] so call sites read naturally:
//!
//! ```
//! use htd_netlist::Netlist;
//!
//! let mut nl = Netlist::new("demo");
//! let bits: Vec<_> = (0..32).map(|i| nl.add_input(format!("x{i}"))).collect();
//! // 32-input AND: packed into a two-level LUT6 tree (6 + 1 LUTs).
//! let trigger = nl.and_many(&bits);
//! nl.add_output("trig", trigger).unwrap();
//! assert_eq!(nl.stats().luts, 7);
//! ```

use crate::cell::LutMask;
use crate::{NetId, Netlist};

impl Netlist {
    /// Emits an inverter.
    pub fn not_gate(&mut self, a: NetId) -> NetId {
        self.add_lut(&[a], LutMask::from_fn(1, |r| r & 1 == 0))
            .expect("1-input lut is always valid")
    }

    /// Emits a buffer LUT (used to model added electrical load explicitly).
    pub fn buf_gate(&mut self, a: NetId) -> NetId {
        self.add_lut(&[a], LutMask::from_fn(1, |r| r & 1 == 1))
            .expect("1-input lut is always valid")
    }

    /// Emits a 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_lut(&[a, b], LutMask::from_fn(2, |r| r == 0b11))
            .expect("2-input lut is always valid")
    }

    /// Emits a 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_lut(&[a, b], LutMask::from_fn(2, |r| r != 0))
            .expect("2-input lut is always valid")
    }

    /// Emits a 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_lut(&[a, b], LutMask::from_fn(2, |r| (r.count_ones() & 1) == 1))
            .expect("2-input lut is always valid")
    }

    /// Emits a 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_lut(&[a, b], LutMask::from_fn(2, |r| (r.count_ones() & 1) == 0))
            .expect("2-input lut is always valid")
    }

    /// Emits a 2:1 multiplexer: `sel ? hi : lo`.
    pub fn mux2(&mut self, sel: NetId, lo: NetId, hi: NetId) -> NetId {
        // Pins: 0 = lo, 1 = hi, 2 = sel.
        let mask = LutMask::from_fn(3, |r| {
            let lo = r & 1 == 1;
            let hi = r & 2 == 2;
            let sel = r & 4 == 4;
            if sel {
                hi
            } else {
                lo
            }
        });
        self.add_lut(&[lo, hi, sel], mask)
            .expect("3-input lut is always valid")
    }

    /// Emits a 4:1 multiplexer in a single LUT6:
    /// `data[(s1,s0)]` with pins `d0..d3, s0, s1`.
    pub fn mux4(&mut self, sel: [NetId; 2], data: [NetId; 4]) -> NetId {
        let mask = LutMask::from_fn(6, |r| {
            let idx = ((r >> 4) & 0b11) as usize;
            (r >> idx) & 1 == 1
        });
        self.add_lut(&[data[0], data[1], data[2], data[3], sel[0], sel[1]], mask)
            .expect("6-input lut is always valid")
    }

    /// Emits a 3-input majority gate (full-adder carry).
    pub fn majority3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.add_lut(&[a, b, c], LutMask::from_fn(3, |r| r.count_ones() >= 2))
            .expect("3-input lut is always valid")
    }

    /// Reduces `bits` with XOR, packed into a balanced LUT6 tree.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn xor_many(&mut self, bits: &[NetId]) -> NetId {
        self.reduce_tree_with(bits, |_, r| (r.count_ones() & 1) == 1)
    }

    /// Reduces `bits` with AND, packed into a balanced LUT6 tree.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn and_many(&mut self, bits: &[NetId]) -> NetId {
        self.reduce_tree_with(bits, |width, r| {
            let full = (1u64 << width) - 1;
            r & full == full
        })
    }

    /// Reduces `bits` with OR, packed into a balanced LUT6 tree.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn or_many(&mut self, bits: &[NetId]) -> NetId {
        self.reduce_tree_with(bits, |width, r| {
            let full = (1u64 << width) - 1;
            r & full != 0
        })
    }

    fn reduce_tree_with(&mut self, bits: &[NetId], f: impl Fn(usize, u64) -> bool) -> NetId {
        assert!(!bits.is_empty(), "cannot reduce an empty bit list");
        let mut layer: Vec<NetId> = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(6));
            for group in layer.chunks(6) {
                if group.len() == 1 {
                    next.push(group[0]);
                } else {
                    let w = group.len();
                    let mask = LutMask::from_fn(w, |r| f(w, r));
                    next.push(self.add_lut(group, mask).expect("≤6-input lut"));
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Emits logic computing `bits == value` (little-endian bit order),
    /// as per-bit XNOR/identity folded into an AND tree.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn eq_const(&mut self, bits: &[NetId], value: u64) -> NetId {
        assert!(!bits.is_empty(), "cannot compare an empty bit list");
        // Pack up to 6 bits per LUT: each LUT checks its slice against the
        // corresponding slice of `value`.
        let mut terms = Vec::with_capacity(bits.len().div_ceil(6));
        for (chunk_idx, group) in bits.chunks(6).enumerate() {
            let expect = (value >> (chunk_idx * 6)) & ((1u64 << group.len()) - 1);
            let mask = LutMask::from_fn(group.len(), move |r| r == expect);
            terms.push(self.add_lut(group, mask).expect("≤6-input lut"));
        }
        self.and_many(&terms)
    }

    /// Emits a ripple-carry incrementer over `bits` (little-endian),
    /// returning the incremented value's nets (same width, wrap-around).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn incrementer(&mut self, bits: &[NetId]) -> Vec<NetId> {
        assert!(!bits.is_empty(), "cannot increment an empty bit list");
        let mut out = Vec::with_capacity(bits.len());
        let mut carry = self.const_net(true);
        for &b in bits {
            out.push(self.xor2(b, carry));
            carry = self.and2(b, carry);
        }
        out
    }

    /// Emits a ripple-borrow decrementer over `bits` (little-endian),
    /// returning the decremented value's nets (same width, wrap-around).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn decrementer(&mut self, bits: &[NetId]) -> Vec<NetId> {
        assert!(!bits.is_empty(), "cannot decrement an empty bit list");
        let mut out = Vec::with_capacity(bits.len());
        let mut borrow = self.const_net(true);
        for &b in bits {
            out.push(self.xor2(b, borrow));
            // Borrow propagates through zero bits.
            let nb = self.not_gate(b);
            borrow = self.and2(nb, borrow);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    fn eval1(nl: &Netlist, inputs: &[(crate::NetId, bool)], out: crate::NetId) -> bool {
        let mut sim = nl.simulator().expect("valid netlist");
        for &(n, v) in inputs {
            sim.set(n, v);
        }
        sim.settle();
        sim.get(out)
    }

    #[test]
    fn basic_gates_truth_tables() {
        let mut nl = Netlist::new("g");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and = nl.and2(a, b);
        let or = nl.or2(a, b);
        let xor = nl.xor2(a, b);
        let xnor = nl.xnor2(a, b);
        let na = nl.not_gate(a);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let ins = [(a, va), (b, vb)];
            assert_eq!(eval1(&nl, &ins, and), va && vb);
            assert_eq!(eval1(&nl, &ins, or), va || vb);
            assert_eq!(eval1(&nl, &ins, xor), va ^ vb);
            assert_eq!(eval1(&nl, &ins, xnor), !(va ^ vb));
            assert_eq!(eval1(&nl, &ins, na), !va);
        }
    }

    #[test]
    fn mux2_selects() {
        let mut nl = Netlist::new("m");
        let s = nl.add_input("s");
        let lo = nl.add_input("lo");
        let hi = nl.add_input("hi");
        let y = nl.mux2(s, lo, hi);
        assert!(eval1(&nl, &[(s, false), (lo, true), (hi, false)], y));
        assert!(eval1(&nl, &[(s, true), (lo, false), (hi, true)], y));
        assert!(!eval1(&nl, &[(s, true), (lo, true), (hi, false)], y));
    }

    #[test]
    fn mux4_selects_all_lanes() {
        let mut nl = Netlist::new("m4");
        let s0 = nl.add_input("s0");
        let s1 = nl.add_input("s1");
        let d: Vec<_> = (0..4).map(|i| nl.add_input(format!("d{i}"))).collect();
        let y = nl.mux4([s0, s1], [d[0], d[1], d[2], d[3]]);
        for lane in 0..4usize {
            for val in [false, true] {
                let mut ins = vec![(s0, lane & 1 == 1), (s1, lane & 2 == 2)];
                for (i, &di) in d.iter().enumerate() {
                    ins.push((di, if i == lane { val } else { !val }));
                }
                assert_eq!(eval1(&nl, &ins, y), val, "lane {lane} val {val}");
            }
        }
    }

    #[test]
    fn wide_reductions_match_reference() {
        for width in [1usize, 2, 5, 6, 7, 12, 32, 36, 37] {
            let mut nl = Netlist::new("w");
            let bits: Vec<_> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
            let xs = nl.xor_many(&bits);
            let ands = nl.and_many(&bits);
            let ors = nl.or_many(&bits);
            // A couple of pseudo-random patterns per width.
            for pat in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 0x5555_5555_5555_5555] {
                let ins: Vec<_> = bits
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (b, (pat >> (i % 64)) & 1 == 1))
                    .collect();
                let vals: Vec<bool> = ins.iter().map(|&(_, v)| v).collect();
                assert_eq!(
                    eval1(&nl, &ins, xs),
                    vals.iter().filter(|&&v| v).count() % 2 == 1,
                    "xor width {width} pat {pat:x}"
                );
                assert_eq!(eval1(&nl, &ins, ands), vals.iter().all(|&v| v));
                assert_eq!(eval1(&nl, &ins, ors), vals.iter().any(|&v| v));
            }
        }
    }

    #[test]
    fn eq_const_detects_exact_value() {
        let mut nl = Netlist::new("eq");
        let bits: Vec<_> = (0..10).map(|i| nl.add_input(format!("x{i}"))).collect();
        let target = 0b1011010011u64;
        let hit = nl.eq_const(&bits, target);
        let ins_hit: Vec<_> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, (target >> i) & 1 == 1))
            .collect();
        assert!(eval1(&nl, &ins_hit, hit));
        let ins_miss: Vec<_> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, (target >> i) & 1 == (if i == 3 { 0 } else { 1 })))
            .collect();
        assert!(!eval1(&nl, &ins_miss, hit));
    }

    #[test]
    fn incrementer_wraps() {
        let mut nl = Netlist::new("inc");
        let bits: Vec<_> = (0..4).map(|i| nl.add_input(format!("x{i}"))).collect();
        let next = nl.incrementer(&bits);
        for v in 0..16u64 {
            let ins: Vec<_> = bits
                .iter()
                .enumerate()
                .map(|(i, &b)| (b, (v >> i) & 1 == 1))
                .collect();
            let mut got = 0u64;
            let mut sim = nl.simulator().unwrap();
            for &(n, val) in &ins {
                sim.set(n, val);
            }
            sim.settle();
            for (i, &o) in next.iter().enumerate() {
                got |= (sim.get(o) as u64) << i;
            }
            assert_eq!(got, (v + 1) % 16, "v={v}");
        }
    }

    #[test]
    fn decrementer_wraps() {
        let mut nl = Netlist::new("dec");
        let bits: Vec<_> = (0..4).map(|i| nl.add_input(format!("x{i}"))).collect();
        let prev = nl.decrementer(&bits);
        for v in 0..16u64 {
            let mut sim = nl.simulator().unwrap();
            sim.set_bus(&bits, v as u128);
            sim.settle();
            let mut got = 0u64;
            for (i, &o) in prev.iter().enumerate() {
                got |= (sim.get(o) as u64) << i;
            }
            assert_eq!(got, v.wrapping_sub(1) % 16, "v={v}");
        }
    }

    #[test]
    fn and_32_uses_two_level_tree() {
        let mut nl = Netlist::new("t");
        let bits: Vec<_> = (0..32).map(|i| nl.add_input(format!("x{i}"))).collect();
        nl.and_many(&bits);
        // 32 -> ceil(32/6)=6 LUTs -> 6 -> 1 LUT = 7 total.
        assert_eq!(nl.stats().luts, 7);
    }
}
