//! Typed indices for netlist entities.

use std::fmt;

/// Index of a [`Cell`](crate::Cell) within a [`Netlist`](crate::Netlist).
///
/// Ids are dense (`0..netlist.cell_count()`) and stable for the lifetime of
/// the netlist: cells are never removed, only added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

/// Index of a [`Net`](crate::Net) within a [`Netlist`](crate::Netlist).
///
/// Ids are dense (`0..netlist.net_count()`) and stable for the lifetime of
/// the netlist: nets are never removed, only added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl CellId {
    /// Returns the id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `CellId` from a dense index.
    ///
    /// Intended for sibling crates that keep per-cell side tables
    /// (placements, delays). The index is not validated against any
    /// particular netlist.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        CellId(index as u32)
    }
}

impl NetId {
    /// Returns the id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a dense index.
    ///
    /// Intended for sibling crates that keep per-net side tables. The index
    /// is not validated against any particular netlist.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        let c = CellId::from_index(42);
        assert_eq!(c.index(), 42);
        let n = NetId::from_index(7);
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CellId::from_index(3).to_string(), "c3");
        assert_eq!(NetId::from_index(9).to_string(), "n9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
        assert!(NetId::from_index(0) < NetId::from_index(10));
    }
}
