//! Gate-level netlist intermediate representation for the `htd` suite.
//!
//! This crate provides the circuit data structure shared by every other
//! `htd` crate: a flat, LUT-mapped gate-level netlist with a single implicit
//! clock domain, in the spirit of a Xilinx *Native Circuit Description*
//! (NCD) after technology mapping.
//!
//! The IR is deliberately small:
//!
//! * [`Netlist`] owns [`Cell`]s and [`Net`]s addressed by the typed ids
//!   [`CellId`] and [`NetId`].
//! * Cells are *k*-input LUTs (`k ≤ 6`, Virtex-5 style), D flip-flops,
//!   constants and top-level ports — see [`CellKind`].
//! * Every net has at most one driver (enforced at construction) and an
//!   explicit sink list, so fan-out cones and electrical loading are cheap
//!   to query.
//!
//! Higher-level logic (XOR trees, muxes, adders, comparators) is emitted
//! through the builder methods on [`Netlist`] and the [`builder`] module,
//! which pack wide XOR/AND networks into 6-input LUTs the way a technology
//! mapper would.
//!
//! # Example
//!
//! Build and simulate a full adder:
//!
//! ```
//! use htd_netlist::Netlist;
//!
//! let mut nl = Netlist::new("full_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let cin = nl.add_input("cin");
//! let sum = nl.xor_many(&[a, b, cin]);
//! let carry = nl.majority3(a, b, cin);
//! nl.add_output("sum", sum);
//! nl.add_output("carry", carry);
//!
//! let mut sim = nl.simulator()?;
//! sim.set(a, true);
//! sim.set(b, true);
//! sim.set(cin, false);
//! sim.settle();
//! assert_eq!(sim.get(sum), false);
//! assert_eq!(sim.get(carry), true);
//! # Ok::<(), htd_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod cell;
mod dot;
mod error;
mod id;
mod net;
mod netlist;
pub mod opt;
pub mod passes;
pub mod serdes;
mod sim;
mod stats;
mod topo;

pub use cell::{Cell, CellKind, LutMask};
pub use error::NetlistError;
pub use id::{CellId, NetId};
pub use net::Net;
pub use netlist::Netlist;
pub use opt::Optimized;
pub use passes::{Diagnostics, Lint, Pass, PassManager, PassOutcome, PassReport, PassStats};
pub use sim::Simulator;
pub use stats::NetlistStats;
pub use topo::{CombCycle, FaninCone, Levelization};
