//! Error type for netlist construction and analysis.

use std::error::Error;
use std::fmt;

use crate::{CellId, NetId};

/// Errors returned by netlist construction, validation and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A LUT was requested with more than six inputs.
    LutTooWide {
        /// The offending input count.
        inputs: usize,
    },
    /// A LUT was requested with zero inputs (use a constant instead).
    EmptyLut,
    /// Two cells attempt to drive the same net.
    MultipleDrivers {
        /// The doubly-driven net.
        net: NetId,
        /// The already-registered driver.
        first: CellId,
        /// The cell that attempted to drive it as well.
        second: CellId,
    },
    /// A net id referenced a net that does not exist in this netlist.
    UnknownNet {
        /// The out-of-range id.
        net: NetId,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// A net on the cycle, for diagnostics.
        net: NetId,
    },
    /// A net has no driver but is read by the simulator or analyses.
    FloatingNet {
        /// The undriven net.
        net: NetId,
    },
    /// A flip-flop created with
    /// [`Netlist::add_dff_uninit`](crate::Netlist::add_dff_uninit) never had
    /// its `D` pin connected.
    UnconnectedDff {
        /// The incomplete flip-flop.
        cell: CellId,
    },
    /// [`Netlist::connect_dff_d`](crate::Netlist::connect_dff_d) was called
    /// on a cell that is not an unconnected flip-flop.
    NotAnOpenDff {
        /// The offending cell.
        cell: CellId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::LutTooWide { inputs } => {
                write!(
                    f,
                    "lut with {inputs} inputs exceeds the 6-input fabric limit"
                )
            }
            NetlistError::EmptyLut => write!(f, "lut with zero inputs is not representable"),
            NetlistError::MultipleDrivers { net, first, second } => {
                write!(f, "net {net} driven by both {first} and {second}")
            }
            NetlistError::UnknownNet { net } => write!(f, "net {net} does not exist"),
            NetlistError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net {net}")
            }
            NetlistError::FloatingNet { net } => write!(f, "net {net} has no driver"),
            NetlistError::UnconnectedDff { cell } => {
                write!(f, "flip-flop {cell} has no D connection")
            }
            NetlistError::NotAnOpenDff { cell } => {
                write!(
                    f,
                    "cell {cell} is not a flip-flop awaiting its D connection"
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::LutTooWide { inputs: 9 };
        let msg = e.to_string();
        assert!(msg.contains("9"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
