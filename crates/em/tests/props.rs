//! Property-based tests for the EM measurement chain.

use htd_em::{AcquisitionParams, CurrentEvent, EmSetup, PowerSetup, Trace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn events_strategy() -> impl Strategy<Value = Vec<CurrentEvent>> {
    proptest::collection::vec(
        (0.0f64..30_000.0, 0.1f64..50.0, 0.0f64..20.0, 0.0f64..20.0).prop_map(|(t, q, x, y)| {
            CurrentEvent {
                time_ps: t,
                charge: q,
                position: (x, y),
            }
        }),
        0..40,
    )
}

fn quiet_setup() -> EmSetup {
    let mut s = EmSetup::bench((10.0, 10.0));
    s.scope.noise_std = 0.0;
    s.setup_gain_jitter = 0.0;
    s.scope.quantization_step = 1e-9; // effectively unquantised
    s
}

fn params() -> AcquisitionParams {
    AcquisitionParams {
        clock_period_ps: 20_000.0,
        n_cycles: 3,
        averages: 1,
    }
}

proptest! {
    /// With noise off, acquisition is linear in charge: doubling every
    /// event's charge doubles every sample.
    #[test]
    fn acquisition_is_linear_in_charge(events in events_strategy()) {
        let setup = quiet_setup();
        let mut rng = StdRng::seed_from_u64(1);
        let t1 = setup.acquire(&events, &params(), &mut rng);
        let doubled: Vec<CurrentEvent> = events
            .iter()
            .map(|e| CurrentEvent { charge: e.charge * 2.0, ..*e })
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let t2 = setup.acquire(&doubled, &params(), &mut rng);
        for (a, b) in t1.samples().iter().zip(t2.samples()) {
            prop_assert!((b - 2.0 * a).abs() < 1e-6, "a {a} b {b}");
        }
    }

    /// Acquisition is additive: acquiring the union of two event sets
    /// equals the sample-wise sum (noise off).
    #[test]
    fn acquisition_is_additive(a in events_strategy(), b in events_strategy()) {
        let setup = quiet_setup();
        let acquire = |ev: &[CurrentEvent]| {
            let mut rng = StdRng::seed_from_u64(2);
            setup.acquire(ev, &params(), &mut rng)
        };
        let ta = acquire(&a);
        let tb = acquire(&b);
        let mut union = a.clone();
        union.extend(b.iter().cloned());
        let tu = acquire(&union);
        for i in 0..tu.len() {
            prop_assert!((tu[i] - (ta[i] + tb[i])).abs() < 1e-6);
        }
    }

    /// Events outside the acquisition window never contribute.
    #[test]
    fn late_events_are_ignored(q in 1.0f64..100.0) {
        let setup = quiet_setup();
        let late = CurrentEvent {
            time_ps: 120_000.0, // beyond 3 × 20 ns
            charge: q,
            position: (10.0, 10.0),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let t = setup.acquire(&[late], &params(), &mut rng);
        prop_assert!(t.peak() == 0.0);
    }

    /// Trace arithmetic: |a − b| is symmetric and zero iff equal.
    #[test]
    fn abs_diff_properties(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let a = Trace::new(xs.clone(), 200.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let b = Trace::new(shifted, 200.0);
        let ab = a.abs_diff(&b);
        let ba = b.abs_diff(&a);
        prop_assert_eq!(ab.samples(), ba.samples());
        prop_assert!(a.abs_diff(&a).peak() == 0.0);
        prop_assert!((a.abs_diff(&b).peak() - 1.0).abs() < 1e-12);
    }

    /// The mean of N copies of a trace is the trace itself.
    #[test]
    fn mean_of_copies_is_identity(xs in proptest::collection::vec(-50.0f64..50.0, 1..30), n in 1usize..5) {
        let t = Trace::new(xs, 200.0);
        let copies: Vec<Trace> = (0..n).map(|_| t.clone()).collect();
        let m = Trace::mean_of(&copies);
        for (a, b) in m.samples().iter().zip(t.samples()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// The power chain is position-blind: translating every event leaves
    /// the trace unchanged.
    #[test]
    fn power_is_translation_invariant(events in events_strategy(), dx in -5.0f64..5.0) {
        let mut setup = PowerSetup::bench();
        setup.scope.noise_std = 0.0;
        setup.setup_gain_jitter = 0.0;
        let acquire = |ev: &[CurrentEvent], seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            setup.acquire(ev, &params(), &mut rng)
        };
        let t1 = acquire(&events, 7);
        let moved: Vec<CurrentEvent> = events
            .iter()
            .map(|e| CurrentEvent {
                position: (e.position.0 + dx, e.position.1 - dx),
                ..*e
            })
            .collect();
        let t2 = acquire(&moved, 7);
        prop_assert_eq!(t1.samples(), t2.samples());
    }
}

/// The batched SoA kernels are pinned bit-for-bit against the retained
/// scalar reference across random event streams (including negative, NaN
/// and past-window times), acquisition params and quantisation steps.
mod kernel_pinning {
    use super::*;
    use htd_em::{acquire_with_reference, EventBatch};

    /// Event streams that exercise every binning edge: in-window,
    /// negative, far-future, and NaN times, with signed charges.
    fn adversarial_events() -> impl Strategy<Value = Vec<CurrentEvent>> {
        proptest::collection::vec(
            (
                -50_000.0f64..200_000.0,
                -20.0f64..50.0,
                0.0f64..20.0,
                0u8..16,
            )
                .prop_map(|(t, q, x, nan)| CurrentEvent {
                    // ~1 in 16 events carries a NaN time.
                    time_ps: if nan == 0 { f64::NAN } else { t },
                    charge: q,
                    position: (x, 20.0 - x),
                }),
            0..60,
        )
    }

    proptest! {
        /// EM chain: batched == reference, bit for bit, trace and stats.
        #[test]
        fn em_batched_matches_reference(
            events in adversarial_events(),
            noise in 0.0f64..100.0,
            jitter in 0.0f64..0.01,
            quant in 0.5f64..8.0,
            averages in 1usize..1000,
            seed in any::<u64>(),
        ) {
            let mut setup = EmSetup::bench((10.0, 10.0));
            setup.scope.noise_std = noise;
            setup.setup_gain_jitter = jitter;
            setup.scope.quantization_step = quant;
            let p = AcquisitionParams { clock_period_ps: 20_000.0, n_cycles: 3, averages };
            let kernel = setup.probe.impulse_response(setup.scope.sample_period_ps);

            let mut rng = StdRng::seed_from_u64(seed);
            let (want, want_stats) = acquire_with_reference(
                &events, &p, &setup.scope, setup.gain, setup.setup_gain_jitter,
                &kernel, |e| setup.probe.coupling(e.position), &mut rng,
            );
            let batch = EventBatch::from_events(&events, |e| setup.probe.coupling(e.position));
            let mut rng = StdRng::seed_from_u64(seed);
            let (got, got_stats) = setup.acquire_batch(&batch, &kernel, &p, &mut rng);

            prop_assert_eq!(got_stats, want_stats);
            prop_assert_eq!(
                got_stats.binned + got_stats.dropped,
                events.len() as u64
            );
            prop_assert_eq!(got.len(), want.len());
            for (i, (a, b)) in want.samples().iter().zip(got.samples()).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "sample {} differs: {} vs {}", i, a, b);
            }
        }

        /// Power chain: batched == reference, bit for bit.
        #[test]
        fn power_batched_matches_reference(
            events in adversarial_events(),
            averages in 1usize..100,
            seed in any::<u64>(),
        ) {
            let setup = PowerSetup::bench();
            let p = AcquisitionParams { clock_period_ps: 20_000.0, n_cycles: 3, averages };
            let kernel = setup.impulse_response(setup.scope.sample_period_ps);

            let mut rng = StdRng::seed_from_u64(seed);
            let (want, want_stats) = acquire_with_reference(
                &events, &p, &setup.scope, setup.gain, setup.setup_gain_jitter,
                &kernel, |_| 1.0, &mut rng,
            );
            let batch = EventBatch::from_events(&events, |_| 1.0);
            let mut rng = StdRng::seed_from_u64(seed);
            let (got, got_stats) = setup.acquire_batch(&batch, &kernel, &p, &mut rng);

            prop_assert_eq!(got_stats, want_stats);
            for (a, b) in want.samples().iter().zip(got.samples()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

/// Cartography scan invariants on arbitrary event sets.
mod scan_props {
    use super::*;
    use htd_em::scan::{hottest, scan, ScanGrid};

    proptest! {
        /// Every scan point is on the grid and metrics are non-negative;
        /// the hottest point's rms is the maximum.
        #[test]
        fn scan_points_are_consistent(events in events_strategy(), n in 2usize..5) {
            let setup = quiet_setup();
            let grid = ScanGrid::over_device(20, 20, n);
            let points = scan(&events, &setup, &params(), &grid, 5);
            prop_assert_eq!(points.len(), n * n);
            for p in &points {
                prop_assert!(p.rms >= 0.0 && p.peak >= 0.0);
                prop_assert!(p.position.0 >= 0.0 && p.position.0 <= 20.0);
                prop_assert!(p.position.1 >= 0.0 && p.position.1 <= 20.0);
            }
            if let Some(hot) = hottest(&points) {
                for p in &points {
                    prop_assert!(hot.rms >= p.rms);
                }
            }
        }
    }
}
