//! Switching activity → current events.
//!
//! Two representations coexist:
//!
//! * [`CurrentEvent`] / [`collect_activity`] — the original AoS form, one
//!   struct per toggle. Kept as the reference semantics and the public
//!   container other crates consume.
//! * [`ActivityTable`] / [`EventBatch`] — the hot-path SoA form. The
//!   table precomputes, per net, everything about a toggle's charge
//!   injection that does not depend on *when* it toggles (charge × local
//!   process variation, die position); a batch is then just two flat
//!   `(time, charge·weight)` arrays the acquisition kernels stream over.
//!
//! Both produce bit-identical charges: the table stores the same
//! `base_charge × current_factor` product `collect_activity` computes per
//! toggle, and weighting multiplies it by the same per-position coupling
//! factor in the same order.

use htd_fabric::{DieVariation, Placement, Technology};
use htd_netlist::{CellKind, NetId, Netlist};
use htd_timing::TimedRun;

/// One charge injection into the power/EM environment: a cell toggled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentEvent {
    /// Absolute time since the start of the acquisition, ps.
    pub time_ps: f64,
    /// Injected charge, arbitrary units (already PV-scaled).
    pub charge: f64,
    /// Die position of the toggling cell, slice-pitch units.
    pub position: (f64, f64),
}

/// Converts the toggle stream of one timed clock cycle into current events.
///
/// * `cycle_start_ps` offsets the in-cycle toggle times to absolute
///   acquisition time.
/// * Each toggle injects the technology's per-cell charge
///   ([`Technology::lut_toggle_charge`] / [`Technology::dff_toggle_charge`])
///   scaled by the die's local current factor — the inter-/intra-die
///   process variation that disperses the golden population in the paper's
///   Section V.
/// * Toggles of unplaced drivers (top-level ports, constants) carry no
///   on-die charge and are skipped.
pub fn collect_activity(
    run: &TimedRun,
    cycle_start_ps: f64,
    netlist: &Netlist,
    placement: &Placement,
    die: &DieVariation,
    tech: &Technology,
) -> Vec<CurrentEvent> {
    let mut events = Vec::with_capacity(run.toggles.len());
    for toggle in &run.toggles {
        let Some(driver) = netlist.net(toggle.net).driver() else {
            continue;
        };
        let base_charge = match netlist.cell(driver).kind() {
            CellKind::Lut(_) => tech.lut_toggle_charge,
            CellKind::Dff => tech.dff_toggle_charge,
            _ => continue,
        };
        let Some(site) = placement.site_of(driver) else {
            continue;
        };
        events.push(CurrentEvent {
            time_ps: cycle_start_ps + toggle.time_ps,
            charge: base_charge * die.current_factor(site.slice),
            position: site.slice.center(),
        });
    }
    events
}

/// Per-net emission profile of one (netlist, placement, die) triple: the
/// time-independent part of [`collect_activity`], precomputed once so the
/// per-toggle work collapses to two array lookups.
///
/// Nets that emit nothing (undriven, driven by a non-LUT/DFF cell, or
/// unplaced drivers) carry a NaN charge sentinel and are skipped.
#[derive(Debug, Clone)]
pub struct ActivityTable {
    /// Per net: injected charge per toggle (`base × current_factor`), NaN
    /// for non-emitting nets.
    charge: Vec<f64>,
    /// Per net: die position of the driver's slice center.
    position: Vec<(f64, f64)>,
}

impl ActivityTable {
    /// Precomputes the per-net charges and positions (same skip rules and
    /// same arithmetic as [`collect_activity`]).
    pub fn build(
        netlist: &Netlist,
        placement: &Placement,
        die: &DieVariation,
        tech: &Technology,
    ) -> Self {
        let n = netlist.net_count();
        let mut charge = vec![f64::NAN; n];
        let mut position = vec![(0.0, 0.0); n];
        for i in 0..n {
            let net = NetId::from_index(i);
            let Some(driver) = netlist.net(net).driver() else {
                continue;
            };
            let base_charge = match netlist.cell(driver).kind() {
                CellKind::Lut(_) => tech.lut_toggle_charge,
                CellKind::Dff => tech.dff_toggle_charge,
                _ => continue,
            };
            let Some(site) = placement.site_of(driver) else {
                continue;
            };
            charge[i] = base_charge * die.current_factor(site.slice);
            position[i] = site.slice.center();
        }
        ActivityTable { charge, position }
    }

    /// Whether toggles of net index `i` inject charge.
    pub fn emits(&self, i: usize) -> bool {
        !self.charge[i].is_nan()
    }

    /// Per-net unweighted charges (NaN = non-emitting).
    pub fn charges(&self) -> &[f64] {
        &self.charge
    }

    /// Per-net driver positions (meaningless where [`Self::emits`] is false).
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.position
    }

    /// Per-net `charge × weight(position)` array for one acquisition
    /// chain (e.g. probe coupling, or `|_| 1.0` for the power baseline).
    /// Non-emitting nets stay NaN.
    pub fn weighted_charges(&self, weight: impl Fn((f64, f64)) -> f64) -> Vec<f64> {
        self.charge
            .iter()
            .zip(&self.position)
            .map(|(&c, &p)| if c.is_nan() { f64::NAN } else { c * weight(p) })
            .collect()
    }

    /// Appends `(absolute time, driver-net index)` rows for every emitting
    /// toggle of one timed cycle — the chain-independent half of a batch
    /// collection (pair with a [`Self::weighted_charges`] array per chain).
    pub fn extend_indexed(
        &self,
        run: &TimedRun,
        cycle_start_ps: f64,
        times_ps: &mut Vec<f64>,
        nets: &mut Vec<u32>,
    ) {
        times_ps.reserve(run.toggles.len());
        nets.reserve(run.toggles.len());
        for toggle in &run.toggles {
            let i = toggle.net.index();
            if self.emits(i) {
                times_ps.push(cycle_start_ps + toggle.time_ps);
                nets.push(i as u32);
            }
        }
    }

    /// Reconstructs the AoS [`CurrentEvent`] form from indexed rows —
    /// bit-identical to what [`collect_activity`] would have produced for
    /// the same toggles.
    pub fn append_events(&self, times_ps: &[f64], nets: &[u32], out: &mut Vec<CurrentEvent>) {
        out.reserve(times_ps.len());
        for (&t, &n) in times_ps.iter().zip(nets) {
            out.push(CurrentEvent {
                time_ps: t,
                charge: self.charge[n as usize],
                position: self.position[n as usize],
            });
        }
    }
}

/// A flat SoA event stream for one acquisition chain: times and
/// already-weighted charges, ready for [`crate::bin_events`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBatch {
    times_ps: Vec<f64>,
    charges: Vec<f64>,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits an AoS event slice into `(time, charge·weight)` arrays,
    /// applying the chain's per-position weight (the same multiply, in
    /// the same order, as the scalar reference).
    pub fn from_events(events: &[CurrentEvent], weight: impl Fn(&CurrentEvent) -> f64) -> Self {
        let mut batch = EventBatch {
            times_ps: Vec::with_capacity(events.len()),
            charges: Vec::with_capacity(events.len()),
        };
        for e in events {
            batch.times_ps.push(e.time_ps);
            batch.charges.push(e.charge * weight(e));
        }
        batch
    }

    /// Builds a batch from indexed rows and a per-net weighted-charge
    /// array (see [`ActivityTable::extend_indexed`]).
    pub fn from_indexed(times_ps: &[f64], nets: &[u32], weighted: &[f64]) -> Self {
        EventBatch {
            times_ps: times_ps.to_vec(),
            charges: nets.iter().map(|&n| weighted[n as usize]).collect(),
        }
    }

    /// Appends one weighted event.
    pub fn push(&mut self, time_ps: f64, weighted_charge: f64) {
        self.times_ps.push(time_ps);
        self.charges.push(weighted_charge);
    }

    /// Event times, ps.
    pub fn times_ps(&self) -> &[f64] {
        &self.times_ps
    }

    /// Weighted charges, one per time.
    pub fn charges(&self) -> &[f64] {
        &self.charges
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.times_ps.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.times_ps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_fabric::{Device, DeviceConfig, VariationModel};
    use htd_netlist::Netlist;
    use htd_timing::{DelayAnnotation, EventSimulator};

    fn toy() -> Netlist {
        let mut nl = Netlist::new("toy");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let a = nl.not_gate(q);
        let b = nl.not_gate(a);
        nl.add_output("b", b).unwrap();
        nl
    }

    #[test]
    fn events_follow_toggles_with_charges() {
        let nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let tech = Technology::virtex5();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let mut fsim = nl.simulator().unwrap();
        fsim.set(nl.input_nets()[0], true);
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        let run = esim.clock_cycle(&ann);
        let events = collect_activity(&run, 1_000.0, &nl, &placement, &die, &tech);
        // DFF toggle + two LUT toggles.
        assert_eq!(events.len(), 3);
        let dff_events: Vec<_> = events
            .iter()
            .filter(|e| e.charge == tech.dff_toggle_charge)
            .collect();
        assert_eq!(dff_events.len(), 1);
        // All offsets include the cycle start.
        for e in &events {
            assert!(e.time_ps >= 1_000.0);
        }
    }

    #[test]
    fn activity_table_reproduces_collect_activity_bit_for_bit() {
        let nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let die = DieVariation::generate(&VariationModel::nm65(), &device, 3);
        let tech = Technology::virtex5();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let run = {
            let mut fsim = nl.simulator().unwrap();
            fsim.set(nl.input_nets()[0], true);
            fsim.settle();
            let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
            esim.clock_cycle(&ann)
        };
        let want = collect_activity(&run, 1_000.0, &nl, &placement, &die, &tech);

        let table = ActivityTable::build(&nl, &placement, &die, &tech);
        let (mut times, mut nets) = (Vec::new(), Vec::new());
        table.extend_indexed(&run, 1_000.0, &mut times, &mut nets);
        let mut got = Vec::new();
        table.append_events(&times, &nets, &mut got);
        assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.time_ps.to_bits(), b.time_ps.to_bits());
            assert_eq!(a.charge.to_bits(), b.charge.to_bits());
            assert_eq!(a.position, b.position);
        }

        // The weighted SoA batch carries the same products as weighting
        // the AoS events per toggle.
        let weight = |p: (f64, f64)| 1.0 / (1.0 + p.0 * p.0 + p.1 * p.1);
        let weighted = table.weighted_charges(weight);
        let batch = EventBatch::from_indexed(&times, &nets, &weighted);
        let direct = EventBatch::from_events(&want, |e| weight(e.position));
        assert_eq!(batch, direct);
    }

    #[test]
    fn current_factor_scales_charge() {
        let nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let tech = Technology::virtex5();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let run = {
            let mut fsim = nl.simulator().unwrap();
            fsim.set(nl.input_nets()[0], true);
            fsim.settle();
            let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
            esim.clock_cycle(&ann)
        };
        let hot = DieVariation::generate(&VariationModel::nm65(), &device, 5);
        let nominal = DieVariation::generate(&VariationModel::none(), &device, 5);
        let e_hot = collect_activity(&run, 0.0, &nl, &placement, &hot, &tech);
        let e_nom = collect_activity(&run, 0.0, &nl, &placement, &nominal, &tech);
        assert_eq!(e_hot.len(), e_nom.len());
        let differs = e_hot
            .iter()
            .zip(&e_nom)
            .any(|(a, b)| (a.charge - b.charge).abs() > 1e-12);
        assert!(differs, "process variation must scale charges");
    }
}
