//! Switching activity → current events.

use htd_fabric::{DieVariation, Placement, Technology};
use htd_netlist::{CellKind, Netlist};
use htd_timing::TimedRun;

/// One charge injection into the power/EM environment: a cell toggled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentEvent {
    /// Absolute time since the start of the acquisition, ps.
    pub time_ps: f64,
    /// Injected charge, arbitrary units (already PV-scaled).
    pub charge: f64,
    /// Die position of the toggling cell, slice-pitch units.
    pub position: (f64, f64),
}

/// Converts the toggle stream of one timed clock cycle into current events.
///
/// * `cycle_start_ps` offsets the in-cycle toggle times to absolute
///   acquisition time.
/// * Each toggle injects the technology's per-cell charge
///   ([`Technology::lut_toggle_charge`] / [`Technology::dff_toggle_charge`])
///   scaled by the die's local current factor — the inter-/intra-die
///   process variation that disperses the golden population in the paper's
///   Section V.
/// * Toggles of unplaced drivers (top-level ports, constants) carry no
///   on-die charge and are skipped.
pub fn collect_activity(
    run: &TimedRun,
    cycle_start_ps: f64,
    netlist: &Netlist,
    placement: &Placement,
    die: &DieVariation,
    tech: &Technology,
) -> Vec<CurrentEvent> {
    let mut events = Vec::with_capacity(run.toggles.len());
    for toggle in &run.toggles {
        let Some(driver) = netlist.net(toggle.net).driver() else {
            continue;
        };
        let base_charge = match netlist.cell(driver).kind() {
            CellKind::Lut(_) => tech.lut_toggle_charge,
            CellKind::Dff => tech.dff_toggle_charge,
            _ => continue,
        };
        let Some(site) = placement.site_of(driver) else {
            continue;
        };
        events.push(CurrentEvent {
            time_ps: cycle_start_ps + toggle.time_ps,
            charge: base_charge * die.current_factor(site.slice),
            position: site.slice.center(),
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_fabric::{Device, DeviceConfig, VariationModel};
    use htd_netlist::Netlist;
    use htd_timing::{DelayAnnotation, EventSimulator};

    fn toy() -> Netlist {
        let mut nl = Netlist::new("toy");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let a = nl.not_gate(q);
        let b = nl.not_gate(a);
        nl.add_output("b", b).unwrap();
        nl
    }

    #[test]
    fn events_follow_toggles_with_charges() {
        let nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let tech = Technology::virtex5();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let mut fsim = nl.simulator().unwrap();
        fsim.set(nl.input_nets()[0], true);
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        let run = esim.clock_cycle(&ann);
        let events = collect_activity(&run, 1_000.0, &nl, &placement, &die, &tech);
        // DFF toggle + two LUT toggles.
        assert_eq!(events.len(), 3);
        let dff_events: Vec<_> = events
            .iter()
            .filter(|e| e.charge == tech.dff_toggle_charge)
            .collect();
        assert_eq!(dff_events.len(), 1);
        // All offsets include the cycle start.
        for e in &events {
            assert!(e.time_ps >= 1_000.0);
        }
    }

    #[test]
    fn current_factor_scales_charge() {
        let nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let tech = Technology::virtex5();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let run = {
            let mut fsim = nl.simulator().unwrap();
            fsim.set(nl.input_nets()[0], true);
            fsim.settle();
            let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
            esim.clock_cycle(&ann)
        };
        let hot = DieVariation::generate(&VariationModel::nm65(), &device, 5);
        let nominal = DieVariation::generate(&VariationModel::none(), &device, 5);
        let e_hot = collect_activity(&run, 0.0, &nl, &placement, &hot, &tech);
        let e_nom = collect_activity(&run, 0.0, &nl, &placement, &nominal, &tech);
        assert_eq!(e_hot.len(), e_nom.len());
        let differs = e_hot
            .iter()
            .zip(&e_nom)
            .any(|(a, b)| (a.charge - b.charge).abs() > 1e-12);
        assert!(differs, "process variation must scale charges");
    }
}
