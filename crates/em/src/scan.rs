//! EM cartography: scanning the probe over the die.
//!
//! The paper notes that the HT's visibility "depends on the HT size,
//! placement and position relative to the probe". This module provides the
//! scanning primitive a lab uses to pick the probe position: acquire the
//! same activity from a grid of probe positions and map a figure of merit
//! over the die.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{AcquisitionParams, CurrentEvent, EmSetup, Trace};

/// A rectangular grid of probe positions over the die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanGrid {
    /// Scan origin (slice-pitch units).
    pub origin: (f64, f64),
    /// Grid extent from the origin.
    pub extent: (f64, f64),
    /// Number of positions per axis.
    pub points: (usize, usize),
}

impl ScanGrid {
    /// A grid covering a whole device of `cols × rows` slices.
    pub fn over_device(cols: u16, rows: u16, points_per_axis: usize) -> Self {
        ScanGrid {
            origin: (0.0, 0.0),
            extent: (cols as f64, rows as f64),
            points: (points_per_axis, points_per_axis),
        }
    }

    /// All probe positions, row-major.
    pub fn positions(&self) -> Vec<(f64, f64)> {
        let (nx, ny) = self.points;
        let mut out = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                let fx = if nx > 1 {
                    i as f64 / (nx - 1) as f64
                } else {
                    0.5
                };
                let fy = if ny > 1 {
                    j as f64 / (ny - 1) as f64
                } else {
                    0.5
                };
                out.push((
                    self.origin.0 + fx * self.extent.0,
                    self.origin.1 + fy * self.extent.1,
                ));
            }
        }
        out
    }
}

/// One scan sample: the probe position and the acquired trace's figure of
/// merit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPoint {
    /// Probe position, slice-pitch units.
    pub position: (f64, f64),
    /// RMS of the trace acquired at that position.
    pub rms: f64,
    /// Peak |sample| of the trace.
    pub peak: f64,
}

/// Acquires the same current events from every position of `grid`,
/// returning one [`ScanPoint`] per position (row-major). The measurement
/// seed is fixed across positions so position is the only variable.
pub fn scan(
    events: &[CurrentEvent],
    base: &EmSetup,
    params: &AcquisitionParams,
    grid: &ScanGrid,
    seed: u64,
) -> Vec<ScanPoint> {
    scan_with_workers(events, base, params, grid, seed, 0)
}

/// [`scan`] with an explicit worker count (`0` = auto): positions are
/// acquired in parallel. Every position uses the same fixed seed (as in
/// [`scan`]), so the map is bit-identical for every worker count.
pub fn scan_with_workers(
    events: &[CurrentEvent],
    base: &EmSetup,
    params: &AcquisitionParams,
    grid: &ScanGrid,
    seed: u64,
    workers: usize,
) -> Vec<ScanPoint> {
    let positions = grid.positions();
    htd_par::parallel_map(workers, &positions, |_, &position| {
        let mut setup = *base;
        setup.probe.position = position;
        let mut rng = StdRng::seed_from_u64(seed);
        let trace: Trace = setup.acquire(events, params, &mut rng);
        ScanPoint {
            position,
            rms: trace.rms(),
            peak: trace.peak(),
        }
    })
}

/// The scan point with the largest RMS — the "point of interest" a lab
/// would park the probe on.
pub fn hottest(points: &[ScanPoint]) -> Option<ScanPoint> {
    points
        .iter()
        .copied()
        .max_by(|a, b| a.rms.partial_cmp(&b.rms).expect("finite rms"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_positions_cover_the_extent() {
        let g = ScanGrid::over_device(20, 10, 3);
        let p = g.positions();
        assert_eq!(p.len(), 9);
        assert_eq!(p[0], (0.0, 0.0));
        assert_eq!(p[8], (20.0, 10.0));
        assert_eq!(p[4], (10.0, 5.0));
    }

    #[test]
    fn single_point_grid_centres() {
        let g = ScanGrid::over_device(20, 10, 1);
        assert_eq!(g.positions(), vec![(10.0, 5.0)]);
    }

    #[test]
    fn scan_finds_the_activity_hotspot() {
        // A burst of charge at one corner of the die.
        let events: Vec<CurrentEvent> = (0..50)
            .map(|i| CurrentEvent {
                time_ps: 100.0 * i as f64,
                charge: 50.0,
                position: (2.0, 2.0),
            })
            .collect();
        let mut setup = EmSetup::bench((10.0, 10.0));
        setup.probe.aperture = 5.0; // sharpen so position matters
        setup.scope.noise_std = 0.0;
        setup.setup_gain_jitter = 0.0;
        let params = AcquisitionParams {
            clock_period_ps: 10_000.0,
            n_cycles: 2,
            averages: 1,
        };
        let grid = ScanGrid::over_device(20, 20, 5);
        let points = scan(&events, &setup, &params, &grid, 1);
        let hot = hottest(&points).unwrap();
        // The hottest scan position is the grid point nearest the burst.
        assert_eq!(hot.position, (0.0, 0.0));
        let far = points.iter().find(|p| p.position == (20.0, 20.0)).unwrap();
        assert!(hot.rms > 2.0 * far.rms);
    }

    #[test]
    fn hottest_of_empty_is_none() {
        assert!(hottest(&[]).is_none());
    }
}
