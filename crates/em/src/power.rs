//! Global power-measurement baseline.
//!
//! The paper motivates EM because it "provides a better spatial and
//! temporal resolution than power measurements". This chain is the
//! comparison point: a shunt/supply measurement that (a) integrates the
//! whole die with **no spatial selectivity** and (b) sees the activity
//! through the PDN's decoupling network — a slow RC low-pass instead of
//! the probe's fast resonant response.

use rand::RngCore;

use crate::chain::{bin_events, convolve_kernel, read_out, AcquisitionParams, BinStats, Scope};
use crate::{CurrentEvent, EventBatch, Trace};

/// A global power-consumption measurement chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSetup {
    /// The digitiser (shared with the EM path).
    pub scope: Scope,
    /// Linear gain of the shunt amplifier.
    pub gain: f64,
    /// RC time constant of the supply/decoupling network, ps.
    pub rc_ps: f64,
    /// Relative gain error per installation.
    pub setup_gain_jitter: f64,
}

impl PowerSetup {
    /// A typical shunt-resistor bench on the same scope.
    pub fn bench() -> Self {
        PowerSetup {
            scope: Scope::agilent_54853a(),
            gain: 31.6,
            rc_ps: 12_000.0,
            setup_gain_jitter: 0.004,
        }
    }

    /// The RC low-pass impulse response sampled at the scope rate.
    pub fn impulse_response(&self, dt_ps: f64) -> Vec<f64> {
        let n = (self.rc_ps * 6.0 / dt_ps).ceil() as usize;
        (0..n)
            .map(|i| (-(i as f64) * dt_ps / self.rc_ps).exp())
            .collect()
    }

    /// Acquires one (averaged) power trace: every on-die event couples
    /// equally, filtered by the supply RC.
    pub fn acquire<R: RngCore + ?Sized>(
        &self,
        events: &[CurrentEvent],
        params: &AcquisitionParams,
        rng: &mut R,
    ) -> Trace {
        let batch = EventBatch::from_events(events, |_| 1.0);
        let kernel = self.impulse_response(self.scope.sample_period_ps);
        self.acquire_batch(&batch, &kernel, params, rng).0
    }

    /// The batched power acquisition (see [`crate::EmSetup::acquire_batch`]).
    pub fn acquire_batch<R: RngCore + ?Sized>(
        &self,
        batch: &EventBatch,
        kernel: &[f64],
        params: &AcquisitionParams,
        rng: &mut R,
    ) -> (Trace, BinStats) {
        let dt = self.scope.sample_period_ps;
        let mut impulses = Vec::new();
        let mut clean = Vec::new();
        let stats = bin_events(
            batch.times_ps(),
            batch.charges(),
            dt,
            params.n_samples(dt),
            &mut impulses,
        );
        convolve_kernel(&impulses, kernel, &mut clean);
        let trace = read_out(
            &clean,
            &self.scope,
            self.gain,
            self.setup_gain_jitter,
            params.averages,
            rng,
        );
        (trace, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spike(t: f64) -> CurrentEvent {
        CurrentEvent {
            time_ps: t,
            charge: 100.0,
            position: (0.0, 0.0),
        }
    }

    fn quiet_params() -> AcquisitionParams {
        AcquisitionParams {
            clock_period_ps: 50_000.0,
            n_cycles: 2,
            averages: 1_000_000,
        }
    }

    #[test]
    fn power_is_position_blind() {
        let setup = PowerSetup::bench();
        let here = CurrentEvent {
            position: (0.0, 0.0),
            ..spike(1_000.0)
        };
        let there = CurrentEvent {
            position: (100.0, 100.0),
            ..spike(1_000.0)
        };
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let t1 = setup.acquire(&[here], &quiet_params(), &mut r1);
        let t2 = setup.acquire(&[there], &quiet_params(), &mut r2);
        assert_eq!(t1.samples(), t2.samples());
    }

    #[test]
    fn power_smears_two_close_spikes_that_em_resolves() {
        let power = PowerSetup::bench();
        let em = crate::EmSetup::bench((0.0, 0.0));
        let events = vec![spike(1_000.0), spike(6_000.0)];
        let mut rng = StdRng::seed_from_u64(2);
        let tp = power.acquire(&events, &quiet_params(), &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let te = em.acquire(&events, &quiet_params(), &mut rng);
        // Count zero crossings / dips between the spikes: the EM trace
        // separates them (returns near zero in between) while the RC tail
        // of the power trace never comes back down.
        let between = 1_000.0 / 200.0;
        let (a, b) = (between as usize + 2, (6_000.0 / 200.0) as usize);
        let p_min: f64 = tp.samples()[a..b]
            .iter()
            .fold(f64::INFINITY, |m, &s| m.min(s.abs()));
        let p_peak = tp.peak();
        // Power trace stays above 40 % of its peak between the spikes.
        assert!(p_min > 0.4 * p_peak, "p_min {p_min} p_peak {p_peak}");
        // EM trace rings down substantially within the same window.
        let e_min: f64 = te.samples()[a..b]
            .iter()
            .fold(f64::INFINITY, |m, &s| m.min(s.abs()));
        assert!(
            e_min < 0.2 * te.peak(),
            "e_min {e_min} e_peak {}",
            te.peak()
        );
    }

    #[test]
    fn impulse_response_is_monotone_decay() {
        let p = PowerSetup::bench();
        let h = p.impulse_response(200.0);
        assert!(h[0] == 1.0);
        for w in h.windows(2) {
            assert!(w[1] < w[0]);
        }
    }
}
