//! The acquisition chain: amplifier, oscilloscope, averaging.
//!
//! The digitiser back-end is split into three batched kernels over flat
//! buffers — [`bin_events`] (charge impulses onto the scope time base),
//! [`convolve_kernel`] (dense causal convolution with the front-end
//! response) and [`read_out`] (installation gain, averaged noise,
//! quantisation) — so callers can cache the noise-free intermediate and
//! pay only the read-out per repetition. [`acquire_with_reference`] keeps
//! the original scalar per-event pipeline as the semantic reference; the
//! test suite pins the batched path against it bit for bit.

use rand::RngCore;

use htd_fabric::variation::standard_normal;

use crate::{CurrentEvent, EventBatch, Probe, Trace};

/// Oscilloscope front-end parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scope {
    /// Sample period, ps (5 GS/s → 200 ps).
    pub sample_period_ps: f64,
    /// Additive noise standard deviation of a *single* acquisition, in
    /// output units (after amplification).
    pub noise_std: f64,
    /// ADC quantisation step in output units.
    pub quantization_step: f64,
}

impl Scope {
    /// The paper's Agilent 54853A at 5 GS/s.
    pub fn agilent_54853a() -> Self {
        Scope {
            sample_period_ps: 200.0,
            noise_std: 2_000.0,
            quantization_step: 1.0,
        }
    }
}

/// Timing/averaging parameters of one acquisition campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquisitionParams {
    /// Device clock period, ps (24 MHz → 41 667 ps).
    pub clock_period_ps: f64,
    /// Number of clock cycles covered by the trace.
    pub n_cycles: usize,
    /// Number of on-scope trace averages (the paper uses 1 000).
    pub averages: usize,
}

impl AcquisitionParams {
    /// The paper's bench: 24 MHz clock, ×1000 averaging, enough cycles for
    /// load + 10 rounds + margin (≈ 2 750 samples at 5 GS/s — the ~3 000
    /// sample window of Fig. 4).
    pub fn paper_bench() -> Self {
        AcquisitionParams {
            clock_period_ps: 41_666.7,
            n_cycles: 13,
            averages: 1_000,
        }
    }

    /// Trace length in samples at a `dt_ps` sample period.
    pub fn n_samples(&self, dt_ps: f64) -> usize {
        ((self.clock_period_ps * self.n_cycles as f64) / dt_ps).ceil() as usize
    }
}

/// Accounting from binning one event stream: nothing is ever silently
/// discarded. `dropped` counts events whose time is NaN, negative, or
/// past the acquisition window — before this accounting, a negative or
/// NaN time saturated `as usize` to bin 0 and smeared out-of-window
/// charge into the first sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinStats {
    /// Events accumulated into the impulse train.
    pub binned: u64,
    /// Events outside the acquisition window (or with non-finite times).
    pub dropped: u64,
}

impl BinStats {
    /// Component-wise sum (for accumulating per-cycle or per-chain stats).
    pub fn merge(self, other: BinStats) -> BinStats {
        BinStats {
            binned: self.binned + other.binned,
            dropped: self.dropped + other.dropped,
        }
    }
}

/// Bins already-weighted charge impulses onto the scope time base:
/// `impulses` is cleared, resized to `n_samples` and accumulated in event
/// order (determinism: f64 accumulation order is part of the contract).
///
/// Events before the window, past it, or with NaN times are counted in
/// [`BinStats::dropped`] and skipped — never smeared into bin 0.
///
/// Internally the bin indices are computed chunk-at-a-time so the
/// divide/floor pass autovectorizes; the scatter-accumulate stays scalar
/// and in event order, so the result is bit-identical to the obvious
/// one-pass loop.
pub fn bin_events(
    times_ps: &[f64],
    charges: &[f64],
    dt_ps: f64,
    n_samples: usize,
    impulses: &mut Vec<f64>,
) -> BinStats {
    impulses.clear();
    impulses.resize(n_samples, 0.0);
    let mut stats = BinStats::default();
    const CHUNK: usize = 64;
    let mut bins = [0.0f64; CHUNK];
    let mut start = 0usize;
    while start < times_ps.len() {
        let m = CHUNK.min(times_ps.len() - start);
        for (b, &t) in bins[..m].iter_mut().zip(&times_ps[start..start + m]) {
            *b = (t / dt_ps).floor();
        }
        for (&bin, &c) in bins[..m].iter().zip(&charges[start..start + m]) {
            if bin >= 0.0 && (bin as usize) < n_samples {
                impulses[bin as usize] += c;
                stats.binned += 1;
            } else {
                stats.dropped += 1;
            }
        }
        start += m;
    }
    stats
}

/// [`bin_events`] fused with the per-net weight gather: bins indexed
/// activity rows (`times_ps[i]` toggles net `nets[i]`) directly against a
/// per-net weighted-charge table, skipping the intermediate
/// [`crate::EventBatch`] materialisation. The accumulated value per event
/// is the *same* precomputed f64 the batch would have copied, added in
/// the same event order, so the result is bit-identical to
/// `bin_events(&EventBatch::from_indexed(..))` — pinned in `tests`.
pub fn bin_events_indexed(
    times_ps: &[f64],
    nets: &[u32],
    weighted: &[f64],
    dt_ps: f64,
    n_samples: usize,
    impulses: &mut Vec<f64>,
) -> BinStats {
    impulses.clear();
    impulses.resize(n_samples, 0.0);
    let mut stats = BinStats::default();
    const CHUNK: usize = 64;
    let mut bins = [0.0f64; CHUNK];
    let mut start = 0usize;
    while start < times_ps.len() {
        let m = CHUNK.min(times_ps.len() - start);
        for (b, &t) in bins[..m].iter_mut().zip(&times_ps[start..start + m]) {
            *b = (t / dt_ps).floor();
        }
        for (&bin, &net) in bins[..m].iter().zip(&nets[start..start + m]) {
            if bin >= 0.0 && (bin as usize) < n_samples {
                impulses[bin as usize] += weighted[net as usize];
                stats.binned += 1;
            } else {
                stats.dropped += 1;
            }
        }
        start += m;
    }
    stats
}

/// Causal convolution of the binned impulse train with the front-end
/// impulse response, over dense slices that autovectorize. `signal` is
/// cleared and resized to the impulse length. Zero bins are skipped —
/// bit-safe because the accumulator can never be `-0.0` (IEEE addition
/// only yields `-0.0` from two negative zeros, and the accumulator
/// starts at `+0.0`).
pub fn convolve_kernel(impulses: &[f64], kernel: &[f64], signal: &mut Vec<f64>) {
    let n = impulses.len();
    signal.clear();
    signal.resize(n, 0.0);
    for (i, &imp) in impulses.iter().enumerate() {
        if imp == 0.0 {
            continue;
        }
        let m = kernel.len().min(n - i);
        for (s, &h) in signal[i..i + m].iter_mut().zip(&kernel[..m]) {
            *s += imp * h;
        }
    }
}

/// The per-repetition read-out of a noise-free convolved signal: one
/// installation-gain draw, then per-sample averaged scope noise and ADC
/// quantisation. This is the only stage that consumes the RNG, so a
/// cached `clean` signal replayed through `read_out` is bit-identical to
/// a full acquisition with the same RNG state.
pub fn read_out<R: RngCore + ?Sized>(
    clean: &[f64],
    scope: &Scope,
    gain: f64,
    setup_gain_jitter: f64,
    averages: usize,
    rng: &mut R,
) -> Trace {
    let install_gain = gain * (1.0 + setup_gain_jitter * standard_normal(rng));
    let noise_std = scope.noise_std / (averages.max(1) as f64).sqrt();
    let q = scope.quantization_step;
    let samples = clean
        .iter()
        .map(|&s| {
            let v = s * install_gain + noise_std * standard_normal(rng);
            (v / q).round() * q
        })
        .collect();
    Trace::new(samples, scope.sample_period_ps)
}

/// The complete EM measurement chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmSetup {
    /// The near-field probe.
    pub probe: Probe,
    /// The digitiser.
    pub scope: Scope,
    /// Linear amplifier gain (30 dB ≈ ×31.6).
    pub gain: f64,
    /// Relative gain error drawn once per acquisition — the probe/bench
    /// re-installation noise the paper examines in Fig. 5.
    pub setup_gain_jitter: f64,
}

impl EmSetup {
    /// The paper's bench: RFU-5-2-class probe over the die centre, 30 dB
    /// amplifier, Agilent scope.
    pub fn bench(die_center: (f64, f64)) -> Self {
        EmSetup {
            probe: Probe::rfu5_like(die_center),
            scope: Scope::agilent_54853a(),
            gain: 31.6,
            setup_gain_jitter: 0.004,
        }
    }

    /// Acquires one (averaged) EM trace of the given current events.
    ///
    /// Averaging is applied analytically: the additive scope noise scales
    /// as `1/√averages` (exact for the Gaussian noise model; see
    /// DESIGN.md §5), while the per-installation gain error does *not*
    /// average out — exactly why the paper's Fig. 5 check matters.
    pub fn acquire<R: RngCore + ?Sized>(
        &self,
        events: &[CurrentEvent],
        params: &AcquisitionParams,
        rng: &mut R,
    ) -> Trace {
        let batch = EventBatch::from_events(events, |e| self.probe.coupling(e.position));
        let kernel = self.probe.impulse_response(self.scope.sample_period_ps);
        self.acquire_batch(&batch, &kernel, params, rng).0
    }

    /// The batched acquisition: a pre-weighted SoA event stream and a
    /// pre-sampled probe kernel in, one averaged trace plus binning
    /// accounting out. Callers that acquire repeatedly should cache the
    /// kernel ([`Probe::impulse_response`]) and the batch.
    pub fn acquire_batch<R: RngCore + ?Sized>(
        &self,
        batch: &EventBatch,
        kernel: &[f64],
        params: &AcquisitionParams,
        rng: &mut R,
    ) -> (Trace, BinStats) {
        let dt = self.scope.sample_period_ps;
        let mut impulses = Vec::new();
        let mut clean = Vec::new();
        let stats = bin_events(
            batch.times_ps(),
            batch.charges(),
            dt,
            params.n_samples(dt),
            &mut impulses,
        );
        convolve_kernel(&impulses, kernel, &mut clean);
        let trace = read_out(
            &clean,
            &self.scope,
            self.gain,
            self.setup_gain_jitter,
            params.averages,
            rng,
        );
        (trace, stats)
    }
}

/// The original scalar digitiser back-end, retained as the semantic
/// reference for the batched kernels: per-event sparse bin + convolve,
/// then the noise/quantise pass. The batched path ([`bin_events`] →
/// [`convolve_kernel`] → [`read_out`]) must stay bit-for-bit identical to
/// this function — `tests` and the property suite pin that equality.
#[allow(clippy::too_many_arguments)]
pub fn acquire_with_reference<R: RngCore + ?Sized>(
    events: &[CurrentEvent],
    params: &AcquisitionParams,
    scope: &Scope,
    gain: f64,
    setup_gain_jitter: f64,
    kernel: &[f64],
    weight: impl Fn(&CurrentEvent) -> f64,
    rng: &mut R,
) -> (Trace, BinStats) {
    let dt = scope.sample_period_ps;
    let n = params.n_samples(dt);
    // Bin the charge impulses, skipping (and counting) anything outside
    // the window — a negative or NaN time must not smear into bin 0.
    let mut stats = BinStats::default();
    let mut impulses = vec![0.0f64; n];
    for e in events {
        let bin = (e.time_ps / dt).floor();
        if bin >= 0.0 && (bin as usize) < n {
            impulses[bin as usize] += e.charge * weight(e);
            stats.binned += 1;
        } else {
            stats.dropped += 1;
        }
    }
    // Convolve with the front-end impulse response.
    let mut signal = vec![0.0f64; n];
    for (i, &imp) in impulses.iter().enumerate() {
        if imp == 0.0 {
            continue;
        }
        for (k, &h) in kernel.iter().enumerate() {
            if let Some(s) = signal.get_mut(i + k) {
                *s += imp * h;
            }
        }
    }
    // Amplify with a per-acquisition installation gain error.
    let install_gain = gain * (1.0 + setup_gain_jitter * standard_normal(rng));
    let noise_std = scope.noise_std / (params.averages.max(1) as f64).sqrt();
    let q = scope.quantization_step;
    let samples = signal
        .into_iter()
        .map(|s| {
            let v = s * install_gain + noise_std * standard_normal(rng);
            (v / q).round() * q
        })
        .collect();
    (Trace::new(samples, dt), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn burst(t0: f64, n: usize, charge: f64) -> Vec<CurrentEvent> {
        (0..n)
            .map(|i| CurrentEvent {
                time_ps: t0 + i as f64 * 37.0,
                charge,
                position: (10.0, 10.0),
            })
            .collect()
    }

    fn params() -> AcquisitionParams {
        AcquisitionParams {
            clock_period_ps: 10_000.0,
            n_cycles: 4,
            averages: 1_000,
        }
    }

    #[test]
    fn indexed_binning_matches_batch_binning_bit_exactly() {
        // Mixed stream: in-window times, a negative time, a NaN time and
        // a past-the-window time, across enough events to exercise the
        // chunked path. The fused kernel must reproduce the
        // materialise-then-bin result to the bit, including drop stats.
        let weighted = [0.25, 1.5, -0.75, 3.125];
        let mut times = Vec::new();
        let mut nets = Vec::new();
        for i in 0..300usize {
            times.push(match i % 50 {
                7 => -12.0,
                23 => f64::NAN,
                41 => 1.0e9,
                _ => i as f64 * 131.0,
            });
            nets.push((i % weighted.len()) as u32);
        }
        let batch = crate::EventBatch::from_indexed(&times, &nets, &weighted);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let sa = bin_events(batch.times_ps(), batch.charges(), 200.0, 200, &mut a);
        let sb = bin_events_indexed(&times, &nets, &weighted, 200.0, 200, &mut b);
        assert_eq!(sa, sb);
        assert!(sb.dropped > 0, "mixed stream must exercise drops");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn trace_has_expected_length_and_timebase() {
        let setup = EmSetup::bench((10.0, 10.0));
        let mut rng = StdRng::seed_from_u64(0);
        let t = setup.acquire(&burst(0.0, 10, 1.0), &params(), &mut rng);
        assert_eq!(t.len(), 200); // 40 000 ps / 200 ps
        assert_eq!(t.dt_ps(), 200.0);
    }

    #[test]
    fn bursts_appear_at_their_cycle_positions() {
        let setup = EmSetup::bench((10.0, 10.0));
        let mut rng = StdRng::seed_from_u64(1);
        let mut events = burst(0.0, 50, 10.0);
        events.extend(burst(15_000.0, 50, 10.0));
        let t = setup.acquire(&events, &params(), &mut rng);
        // Energy near the bursts dwarfs energy after the second burst's
        // ring has fully decayed (last event ≈ 16.9 ns + 11.5 ns horizon
        // ≈ sample 142).
        let e0: f64 = t.samples()[0..50].iter().map(|s| s * s).sum();
        let e2: f64 = t.samples()[160..200].iter().map(|s| s * s).sum();
        assert!(e0 > 100.0 * e2.max(1.0), "e0 {e0} e2 {e2}");
    }

    #[test]
    fn averaging_reduces_noise() {
        let setup = EmSetup::bench((10.0, 10.0));
        let single = AcquisitionParams {
            averages: 1,
            ..params()
        };
        let averaged = AcquisitionParams {
            averages: 1_000,
            ..params()
        };
        // No events: traces are pure noise.
        let noise_rms = |p: &AcquisitionParams, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            setup.acquire(&[], p, &mut rng).rms()
        };
        let r1 = noise_rms(&single, 2);
        let r1000 = noise_rms(&averaged, 2);
        assert!(
            r1 > 20.0 * r1000,
            "averaging must shrink noise: {r1} vs {r1000}"
        );
    }

    #[test]
    fn closer_events_couple_more() {
        let setup = EmSetup::bench((10.0, 10.0));
        let p = params();
        let near = CurrentEvent {
            time_ps: 100.0,
            charge: 100.0,
            position: (10.0, 10.0),
        };
        let far = CurrentEvent {
            time_ps: 100.0,
            charge: 100.0,
            position: (80.0, 80.0),
        };
        let quiet = AcquisitionParams {
            averages: 1_000_000,
            ..p
        };
        let mut rng = StdRng::seed_from_u64(3);
        let tn = setup.acquire(&[near], &quiet, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let tf = setup.acquire(&[far], &quiet, &mut rng);
        assert!(tn.peak() > 2.0 * tf.peak());
    }

    #[test]
    fn quantisation_rounds_to_steps() {
        let mut setup = EmSetup::bench((10.0, 10.0));
        setup.scope.quantization_step = 8.0;
        setup.scope.noise_std = 0.0;
        setup.setup_gain_jitter = 0.0;
        let mut rng = StdRng::seed_from_u64(4);
        let t = setup.acquire(&burst(0.0, 50, 1.0), &params(), &mut rng);
        for &s in t.samples() {
            assert_eq!(s % 8.0, 0.0, "sample {s} not on the ADC grid");
        }
    }

    #[test]
    fn out_of_window_events_are_dropped_not_smeared() {
        // Regression: a negative or NaN time used to saturate
        // `(t / dt).floor() as usize` to bin 0, smearing charge into the
        // first sample. Such events must now be skipped and counted.
        let setup = EmSetup::bench((10.0, 10.0));
        let p = params();
        let valid = burst(500.0, 5, 10.0);
        let mut polluted = valid.clone();
        for t in [-1.0, -40_000.0, f64::NAN, 1.0e9] {
            polluted.push(CurrentEvent {
                time_ps: t,
                charge: 1_000.0,
                position: (10.0, 10.0),
            });
        }
        let kernel = setup.probe.impulse_response(setup.scope.sample_period_ps);
        let weight = |e: &CurrentEvent| setup.probe.coupling(e.position);
        let mut rng = StdRng::seed_from_u64(11);
        let (clean_trace, clean_stats) = acquire_with_reference(
            &valid,
            &p,
            &setup.scope,
            setup.gain,
            setup.setup_gain_jitter,
            &kernel,
            weight,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let (polluted_trace, polluted_stats) = acquire_with_reference(
            &polluted,
            &p,
            &setup.scope,
            setup.gain,
            setup.setup_gain_jitter,
            &kernel,
            weight,
            &mut rng,
        );
        assert_eq!(
            clean_stats,
            BinStats {
                binned: 5,
                dropped: 0
            }
        );
        assert_eq!(
            polluted_stats,
            BinStats {
                binned: 5,
                dropped: 4
            }
        );
        assert_eq!(clean_trace, polluted_trace, "dropped events leaked charge");

        // The batched kernel agrees on both counts.
        let batch = EventBatch::from_events(&polluted, weight);
        let mut rng = StdRng::seed_from_u64(11);
        let (batched_trace, batched_stats) = setup.acquire_batch(&batch, &kernel, &p, &mut rng);
        assert_eq!(batched_stats, polluted_stats);
        assert_eq!(batched_trace, clean_trace);
    }

    #[test]
    fn read_out_replays_identically_from_a_cached_clean_signal() {
        // The three-stage split exists so reps can reuse the clean signal:
        // bin+convolve once, read_out per rep — bit-identical to a full
        // acquisition at the same RNG state.
        let setup = EmSetup::bench((10.0, 10.0));
        let p = params();
        let events = burst(2_000.0, 30, 5.0);
        let kernel = setup.probe.impulse_response(setup.scope.sample_period_ps);
        let batch = EventBatch::from_events(&events, |e| setup.probe.coupling(e.position));
        let mut impulses = Vec::new();
        let mut clean = Vec::new();
        bin_events(
            batch.times_ps(),
            batch.charges(),
            setup.scope.sample_period_ps,
            p.n_samples(setup.scope.sample_period_ps),
            &mut impulses,
        );
        convolve_kernel(&impulses, &kernel, &mut clean);
        for seed in [0u64, 1, 99] {
            let mut rng = StdRng::seed_from_u64(seed);
            let full = setup.acquire(&events, &p, &mut rng);
            let mut rng = StdRng::seed_from_u64(seed);
            let replay = read_out(
                &clean,
                &setup.scope,
                setup.gain,
                setup.setup_gain_jitter,
                p.averages,
                &mut rng,
            );
            assert_eq!(full, replay, "seed {seed}");
        }
    }

    #[test]
    fn paper_bench_window_matches_fig4_scale() {
        let p = AcquisitionParams::paper_bench();
        let n = (p.clock_period_ps * p.n_cycles as f64 / 200.0).ceil() as usize;
        assert!((2_500..3_200).contains(&n), "window {n} samples");
    }
}
