//! The acquisition chain: amplifier, oscilloscope, averaging.

use rand::RngCore;

use htd_fabric::variation::standard_normal;

use crate::{CurrentEvent, Probe, Trace};

/// Oscilloscope front-end parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scope {
    /// Sample period, ps (5 GS/s → 200 ps).
    pub sample_period_ps: f64,
    /// Additive noise standard deviation of a *single* acquisition, in
    /// output units (after amplification).
    pub noise_std: f64,
    /// ADC quantisation step in output units.
    pub quantization_step: f64,
}

impl Scope {
    /// The paper's Agilent 54853A at 5 GS/s.
    pub fn agilent_54853a() -> Self {
        Scope {
            sample_period_ps: 200.0,
            noise_std: 2_000.0,
            quantization_step: 1.0,
        }
    }
}

/// Timing/averaging parameters of one acquisition campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquisitionParams {
    /// Device clock period, ps (24 MHz → 41 667 ps).
    pub clock_period_ps: f64,
    /// Number of clock cycles covered by the trace.
    pub n_cycles: usize,
    /// Number of on-scope trace averages (the paper uses 1 000).
    pub averages: usize,
}

impl AcquisitionParams {
    /// The paper's bench: 24 MHz clock, ×1000 averaging, enough cycles for
    /// load + 10 rounds + margin (≈ 2 750 samples at 5 GS/s — the ~3 000
    /// sample window of Fig. 4).
    pub fn paper_bench() -> Self {
        AcquisitionParams {
            clock_period_ps: 41_666.7,
            n_cycles: 13,
            averages: 1_000,
        }
    }
}

/// The complete EM measurement chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmSetup {
    /// The near-field probe.
    pub probe: Probe,
    /// The digitiser.
    pub scope: Scope,
    /// Linear amplifier gain (30 dB ≈ ×31.6).
    pub gain: f64,
    /// Relative gain error drawn once per acquisition — the probe/bench
    /// re-installation noise the paper examines in Fig. 5.
    pub setup_gain_jitter: f64,
}

impl EmSetup {
    /// The paper's bench: RFU-5-2-class probe over the die centre, 30 dB
    /// amplifier, Agilent scope.
    pub fn bench(die_center: (f64, f64)) -> Self {
        EmSetup {
            probe: Probe::rfu5_like(die_center),
            scope: Scope::agilent_54853a(),
            gain: 31.6,
            setup_gain_jitter: 0.004,
        }
    }

    /// Acquires one (averaged) EM trace of the given current events.
    ///
    /// Averaging is applied analytically: the additive scope noise scales
    /// as `1/√averages` (exact for the Gaussian noise model; see
    /// DESIGN.md §5), while the per-installation gain error does *not*
    /// average out — exactly why the paper's Fig. 5 check matters.
    pub fn acquire<R: RngCore + ?Sized>(
        &self,
        events: &[CurrentEvent],
        params: &AcquisitionParams,
        rng: &mut R,
    ) -> Trace {
        let kernel = self.probe.impulse_response(self.scope.sample_period_ps);
        let weight = |e: &CurrentEvent| self.probe.coupling(e.position);
        acquire_with(
            events,
            params,
            &self.scope,
            self.gain,
            self.setup_gain_jitter,
            &kernel,
            weight,
            rng,
        )
    }
}

/// Shared digitiser back-end: bin events, convolve, amplify, add noise,
/// quantise. Used by both the EM chain and the power baseline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn acquire_with<R: RngCore + ?Sized>(
    events: &[CurrentEvent],
    params: &AcquisitionParams,
    scope: &Scope,
    gain: f64,
    setup_gain_jitter: f64,
    kernel: &[f64],
    weight: impl Fn(&CurrentEvent) -> f64,
    rng: &mut R,
) -> Trace {
    let dt = scope.sample_period_ps;
    let n = ((params.clock_period_ps * params.n_cycles as f64) / dt).ceil() as usize;
    // Bin the charge impulses.
    let mut impulses = vec![0.0f64; n];
    for e in events {
        let bin = (e.time_ps / dt).floor() as usize;
        if bin < n {
            impulses[bin] += e.charge * weight(e);
        }
    }
    // Convolve with the front-end impulse response.
    let mut signal = vec![0.0f64; n];
    for (i, &imp) in impulses.iter().enumerate() {
        if imp == 0.0 {
            continue;
        }
        for (k, &h) in kernel.iter().enumerate() {
            if let Some(s) = signal.get_mut(i + k) {
                *s += imp * h;
            }
        }
    }
    // Amplify with a per-acquisition installation gain error.
    let install_gain = gain * (1.0 + setup_gain_jitter * standard_normal(rng));
    let noise_std = scope.noise_std / (params.averages.max(1) as f64).sqrt();
    let q = scope.quantization_step;
    let samples = signal
        .into_iter()
        .map(|s| {
            let v = s * install_gain + noise_std * standard_normal(rng);
            (v / q).round() * q
        })
        .collect();
    Trace::new(samples, dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn burst(t0: f64, n: usize, charge: f64) -> Vec<CurrentEvent> {
        (0..n)
            .map(|i| CurrentEvent {
                time_ps: t0 + i as f64 * 37.0,
                charge,
                position: (10.0, 10.0),
            })
            .collect()
    }

    fn params() -> AcquisitionParams {
        AcquisitionParams {
            clock_period_ps: 10_000.0,
            n_cycles: 4,
            averages: 1_000,
        }
    }

    #[test]
    fn trace_has_expected_length_and_timebase() {
        let setup = EmSetup::bench((10.0, 10.0));
        let mut rng = StdRng::seed_from_u64(0);
        let t = setup.acquire(&burst(0.0, 10, 1.0), &params(), &mut rng);
        assert_eq!(t.len(), 200); // 40 000 ps / 200 ps
        assert_eq!(t.dt_ps(), 200.0);
    }

    #[test]
    fn bursts_appear_at_their_cycle_positions() {
        let setup = EmSetup::bench((10.0, 10.0));
        let mut rng = StdRng::seed_from_u64(1);
        let mut events = burst(0.0, 50, 10.0);
        events.extend(burst(15_000.0, 50, 10.0));
        let t = setup.acquire(&events, &params(), &mut rng);
        // Energy near the bursts dwarfs energy after the second burst's
        // ring has fully decayed (last event ≈ 16.9 ns + 11.5 ns horizon
        // ≈ sample 142).
        let e0: f64 = t.samples()[0..50].iter().map(|s| s * s).sum();
        let e2: f64 = t.samples()[160..200].iter().map(|s| s * s).sum();
        assert!(e0 > 100.0 * e2.max(1.0), "e0 {e0} e2 {e2}");
    }

    #[test]
    fn averaging_reduces_noise() {
        let setup = EmSetup::bench((10.0, 10.0));
        let single = AcquisitionParams {
            averages: 1,
            ..params()
        };
        let averaged = AcquisitionParams {
            averages: 1_000,
            ..params()
        };
        // No events: traces are pure noise.
        let noise_rms = |p: &AcquisitionParams, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            setup.acquire(&[], p, &mut rng).rms()
        };
        let r1 = noise_rms(&single, 2);
        let r1000 = noise_rms(&averaged, 2);
        assert!(
            r1 > 20.0 * r1000,
            "averaging must shrink noise: {r1} vs {r1000}"
        );
    }

    #[test]
    fn closer_events_couple_more() {
        let setup = EmSetup::bench((10.0, 10.0));
        let p = params();
        let near = CurrentEvent {
            time_ps: 100.0,
            charge: 100.0,
            position: (10.0, 10.0),
        };
        let far = CurrentEvent {
            time_ps: 100.0,
            charge: 100.0,
            position: (80.0, 80.0),
        };
        let quiet = AcquisitionParams {
            averages: 1_000_000,
            ..p
        };
        let mut rng = StdRng::seed_from_u64(3);
        let tn = setup.acquire(&[near], &quiet, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let tf = setup.acquire(&[far], &quiet, &mut rng);
        assert!(tn.peak() > 2.0 * tf.peak());
    }

    #[test]
    fn quantisation_rounds_to_steps() {
        let mut setup = EmSetup::bench((10.0, 10.0));
        setup.scope.quantization_step = 8.0;
        setup.scope.noise_std = 0.0;
        setup.setup_gain_jitter = 0.0;
        let mut rng = StdRng::seed_from_u64(4);
        let t = setup.acquire(&burst(0.0, 50, 1.0), &params(), &mut rng);
        for &s in t.samples() {
            assert_eq!(s % 8.0, 0.0, "sample {s} not on the ADC grid");
        }
    }

    #[test]
    fn paper_bench_window_matches_fig4_scale() {
        let p = AcquisitionParams::paper_bench();
        let n = (p.clock_period_ps * p.n_cycles as f64 / 200.0).ceil() as usize;
        assert!((2_500..3_200).contains(&n), "window {n} samples");
    }
}
