//! Electromagnetic (and power) side-channel measurement chain simulation.
//!
//! Models the paper's bench (Appendix B): a Langer RFU-5-2-class probe over
//! a Virtex-5, a 30 dB amplifier and an Agilent 54853A oscilloscope at
//! 5 GS/s, with the device clocked at 24 MHz. The pipeline is physical at
//! every stage:
//!
//! 1. [`collect_activity`] turns the timed toggle stream of one clock cycle
//!    ([`htd_timing::TimedRun`]) into [`CurrentEvent`]s — per-toggle charge
//!    injections at die positions, scaled by the die's process-variation
//!    current factors (this is where inter-die EM personality comes from).
//! 2. [`Probe`] weights each event by its position coupling and rings with
//!    a damped-sinusoid impulse response.
//! 3. [`EmSetup::acquire`] applies amplifier gain, samples at the scope
//!    rate, adds acquisition noise (scaled by `1/√N` for N-fold trace
//!    averaging, exact for the additive-Gaussian noise model) plus a small
//!    per-installation gain error (the "setup noise" the paper cancels by
//!    averaging in Fig. 5), and quantises like an 8-bit scope front-end.
//! 4. [`PowerSetup`] is the global power-measurement baseline: no spatial
//!    selectivity and a lower measurement bandwidth — the comparison point
//!    for the paper's claim that EM gives better spatial and temporal
//!    resolution.
//!
//! Traces live in [`Trace`], which also carries the arithmetic the
//! detection metrics need (differences, absolute values, means).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod chain;
mod power;
mod probe;
pub mod scan;
mod trace;

pub use activity::{collect_activity, ActivityTable, CurrentEvent, EventBatch};
pub use chain::{
    acquire_with_reference, bin_events, bin_events_indexed, convolve_kernel, read_out,
    AcquisitionParams, BinStats, EmSetup, Scope,
};
pub use power::PowerSetup;
pub use probe::Probe;
pub use trace::Trace;
