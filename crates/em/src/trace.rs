//! Side-channel trace container and arithmetic.

use std::ops::{Index, Sub};

/// A sampled side-channel trace (EM or power).
///
/// Samples are in scope units (quantised ADC counts scaled to `f64`); the
/// time base is `dt_ps` per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    samples: Vec<f64>,
    dt_ps: f64,
}

impl Trace {
    /// Wraps raw samples with their sample period.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ps` is not strictly positive.
    pub fn new(samples: Vec<f64>, dt_ps: f64) -> Self {
        assert!(dt_ps > 0.0, "sample period must be positive");
        Trace { samples, dt_ps }
    }

    /// Non-panicking constructor for strict deserializers: `None` unless
    /// the sample period is strictly positive and finite and every
    /// sample is finite.
    pub fn try_new(samples: Vec<f64>, dt_ps: f64) -> Option<Self> {
        if dt_ps <= 0.0 || !dt_ps.is_finite() || samples.iter().any(|s| !s.is_finite()) {
            return None;
        }
        Some(Trace { samples, dt_ps })
    }

    /// Sample values.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample period, ps.
    pub fn dt_ps(&self) -> f64 {
        self.dt_ps
    }

    /// Point-wise absolute difference `|self − other|` (the paper's
    /// `D = |trace − reference|` statistic).
    ///
    /// # Panics
    ///
    /// Panics if lengths or time bases differ.
    pub fn abs_diff(&self, other: &Trace) -> Trace {
        self.check_compatible(other);
        Trace {
            samples: self
                .samples
                .iter()
                .zip(&other.samples)
                .map(|(a, b)| (a - b).abs())
                .collect(),
            dt_ps: self.dt_ps,
        }
    }

    /// Point-wise mean of a non-empty set of equal-shape traces (the
    /// paper's `E₈(G)` golden reference).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or shapes differ.
    pub fn mean_of(traces: &[Trace]) -> Trace {
        assert!(!traces.is_empty(), "mean of zero traces");
        let first = &traces[0];
        let mut acc = vec![0.0f64; first.len()];
        for t in traces {
            first.check_compatible(t);
            for (a, s) in acc.iter_mut().zip(t.samples()) {
                *a += s;
            }
        }
        let n = traces.len() as f64;
        acc.iter_mut().for_each(|a| *a /= n);
        Trace {
            samples: acc,
            dt_ps: first.dt_ps,
        }
    }

    /// Largest absolute sample value.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, &s| m.max(s.abs()))
    }

    /// Root-mean-square of the samples.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        (self.samples.iter().map(|s| s * s).sum::<f64>() / self.samples.len() as f64).sqrt()
    }

    /// A sub-trace covering sample indices `[from, to)` (for zooming on a
    /// region of interest, as in the paper's Fig. 5 inset).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn window(&self, from: usize, to: usize) -> Trace {
        assert!(from <= to && to <= self.samples.len(), "bad window");
        Trace {
            samples: self.samples[from..to].to_vec(),
            dt_ps: self.dt_ps,
        }
    }

    fn check_compatible(&self, other: &Trace) {
        assert_eq!(self.samples.len(), other.samples.len(), "length mismatch");
        // Exact-or-relative: an absolute tolerance would reject equal
        // periods that differ by float rounding at large magnitudes and
        // accept genuinely different ones near zero.
        let (a, b) = (self.dt_ps, other.dt_ps);
        assert!(
            a == b || (a - b).abs() <= 1e-12 * a.abs().max(b.abs()),
            "time-base mismatch ({a} ps vs {b} ps)"
        );
    }
}

impl Index<usize> for Trace {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.samples[i]
    }
}

impl Sub<&Trace> for &Trace {
    type Output = Trace;

    /// Point-wise (signed) difference.
    fn sub(self, rhs: &Trace) -> Trace {
        self.check_compatible(rhs);
        Trace {
            samples: self
                .samples
                .iter()
                .zip(&rhs.samples)
                .map(|(a, b)| a - b)
                .collect(),
            dt_ps: self.dt_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_diff_and_sub() {
        let a = Trace::new(vec![1.0, -2.0, 3.0], 200.0);
        let b = Trace::new(vec![0.5, 1.0, 3.0], 200.0);
        assert_eq!(a.abs_diff(&b).samples(), &[0.5, 3.0, 0.0]);
        assert_eq!((&a - &b).samples(), &[0.5, -3.0, 0.0]);
    }

    #[test]
    fn mean_of_traces() {
        let a = Trace::new(vec![1.0, 2.0], 200.0);
        let b = Trace::new(vec![3.0, 6.0], 200.0);
        let m = Trace::mean_of(&[a, b]);
        assert_eq!(m.samples(), &[2.0, 4.0]);
    }

    #[test]
    fn peak_rms_window() {
        let t = Trace::new(vec![1.0, -4.0, 2.0, 0.0], 200.0);
        assert_eq!(t.peak(), 4.0);
        assert!((t.rms() - (21.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(t.window(1, 3).samples(), &[-4.0, 2.0]);
        assert_eq!(t[2], 2.0);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn incompatible_lengths_panic() {
        let a = Trace::new(vec![1.0], 200.0);
        let b = Trace::new(vec![1.0, 2.0], 200.0);
        let _ = a.abs_diff(&b);
    }

    #[test]
    #[should_panic(expected = "sample period must be positive")]
    fn zero_dt_rejected() {
        Trace::new(vec![], 0.0);
    }

    #[test]
    fn large_dt_rounding_is_compatible() {
        // 10^9 ps periods that differ by a few ULPs (e.g. accumulated
        // through different float paths) are the same time base. The old
        // absolute 1e-9 tolerance rejected these.
        let dt = 1.0e9;
        let dt_rounded = dt * (1.0 + 4.0 * f64::EPSILON);
        assert!(dt != dt_rounded && (dt - dt_rounded).abs() > 1e-9);
        let a = Trace::new(vec![1.0, 2.0], dt);
        let b = Trace::new(vec![3.0, 4.0], dt_rounded);
        assert_eq!((&a - &b).samples(), &[-2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "time-base mismatch")]
    fn tiny_but_different_dts_are_incompatible() {
        // 1 fs vs 2 fs is a 2× rate mismatch; the old absolute tolerance
        // silently accepted it.
        let a = Trace::new(vec![1.0], 1.0e-3);
        let b = Trace::new(vec![1.0], 2.0e-3);
        let _ = a.abs_diff(&b);
    }

    #[test]
    #[should_panic(expected = "time-base mismatch")]
    fn clearly_different_dts_are_incompatible() {
        let a = Trace::new(vec![1.0], 200.0);
        let b = Trace::new(vec![1.0], 200.1);
        let _ = a.abs_diff(&b);
    }
}
