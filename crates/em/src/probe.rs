//! EM probe model: spatial coupling and ringing impulse response.

/// A near-field EM probe above the die.
///
/// The paper's Langer RFU-5-2 "captures the global EM activity of the
/// chip": a large-aperture probe with mild spatial selectivity. Coupling to
/// a current event at distance `d` (slice pitches, in the die plane) is a
/// Lorentzian `1 / (1 + (d/aperture)²)`; the pickup rings as a damped
/// sinusoid set by the probe/amplifier resonance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// Probe centre over the die, slice-pitch units.
    pub position: (f64, f64),
    /// Effective aperture radius, slice pitches (large = near-global).
    pub aperture: f64,
    /// Ringing frequency of the impulse response, GHz.
    pub ring_ghz: f64,
    /// Exponential decay constant of the ringing, ps.
    pub decay_ps: f64,
}

impl Probe {
    /// The paper's bench probe, centred over the die with a near-global
    /// aperture and a few-nanosecond ring.
    pub fn rfu5_like(die_center: (f64, f64)) -> Self {
        Probe {
            position: die_center,
            aperture: 30.0,
            ring_ghz: 0.35,
            decay_ps: 2_500.0,
        }
    }

    /// Spatial coupling factor for an event at `pos` (1.0 directly under
    /// the probe centre, decaying with distance).
    pub fn coupling(&self, pos: (f64, f64)) -> f64 {
        let dx = pos.0 - self.position.0;
        let dy = pos.1 - self.position.1;
        let d2 = dx * dx + dy * dy;
        1.0 / (1.0 + d2 / (self.aperture * self.aperture))
    }

    /// The impulse response sampled at `dt_ps`, truncated when the
    /// envelope falls below 1 % — a decaying sinusoid `e^(−t/τ) sin(2πft)`.
    pub fn impulse_response(&self, dt_ps: f64) -> Vec<f64> {
        assert!(dt_ps > 0.0);
        let horizon_ps = self.decay_ps * 4.6; // ln(100)
        let n = (horizon_ps / dt_ps).ceil() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 * dt_ps;
                (-t / self.decay_ps).exp()
                    * (2.0 * std::f64::consts::PI * self.ring_ghz * t / 1_000.0).sin()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_is_max_at_center_and_decays() {
        let p = Probe::rfu5_like((10.0, 10.0));
        let c0 = p.coupling((10.0, 10.0));
        assert_eq!(c0, 1.0);
        let c1 = p.coupling((20.0, 10.0));
        let c2 = p.coupling((40.0, 10.0));
        assert!(c0 > c1 && c1 > c2);
        // Near-global: even the die corner keeps a substantial fraction.
        assert!(p.coupling((0.0, 0.0)) > 0.5);
    }

    #[test]
    fn impulse_response_rings_and_decays() {
        let p = Probe::rfu5_like((0.0, 0.0));
        let h = p.impulse_response(200.0);
        assert!(h.len() > 20);
        assert_eq!(h[0], 0.0); // sin(0)
                               // It must change sign (ringing)...
        assert!(h.iter().any(|&v| v > 0.01));
        assert!(h.iter().any(|&v| v < -0.01));
        // ...and decay towards the end.
        let head_max = h[..h.len() / 4].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let tail_max = h[3 * h.len() / 4..]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(tail_max < head_max * 0.2);
    }
}
