//! # htd-faults — deterministic, index-derived fault injection
//!
//! A [`FaultPlan`] decides, purely from a seed and the *identity* of a
//! measurement event — never from scheduling order, wall-clock time or
//! worker count — whether that event fails. The decision function mirrors
//! the engine's per-(pair, rep) noise-seed schedule: every fault site is
//! keyed by the index words that name the event (channel index,
//! population tag, die index, attempt number, …), so a campaign replayed
//! with 1, 2 or 8 workers injects the *same* faults at the *same* places
//! and degrades to a bit-identical report.
//!
//! Four sites cover the bench failure modes the paper's protocol has to
//! survive:
//!
//! * [`FaultSite::Acquire`] — a whole acquisition is garbage (scope
//!   glitch, lost trigger). The caller re-acquires with a fresh seed from
//!   [`retry_seed`].
//! * [`FaultSite::Rep`] — one sweep repetition inside a delay acquisition
//!   is dropped; surviving repetitions are averaged ([`RepHealth`] counts
//!   the quarantine).
//! * [`FaultSite::Calibrate`] — a calibration pass diverges and must be
//!   re-run.
//! * [`FaultSite::StoreRead`] — an artifact read hits a corrupt block.
//!   Readers and tests consult this site to decide *which* stored lines
//!   to corrupt/drop when exercising the store's salvage path.
//!
//! The no-fault plan is free: [`FaultPlan::none`] short-circuits before
//! any hashing, and [`retry_seed`] is the identity on attempt 0, so a
//! fault-aware code path fed the none-plan performs exactly the same
//! floating-point work as its fault-oblivious ancestor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A named failure site inside the measurement stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A whole channel acquisition fails (returns garbage / times out).
    Acquire,
    /// One sweep repetition inside an acquisition is dropped.
    Rep,
    /// A calibration pass diverges.
    Calibrate,
    /// A stored artifact block is read back corrupt.
    StoreRead,
}

impl FaultSite {
    /// The site's domain-separation tag mixed into every decision hash.
    fn tag(self) -> u64 {
        match self {
            FaultSite::Acquire => 0x4143_5155_4952_4531,
            FaultSite::Rep => 0x5245_5045_5449_5431,
            FaultSite::Calibrate => 0x4341_4C49_4252_4131,
            FaultSite::StoreRead => 0x5354_4F52_4552_4431,
        }
    }
}

/// A seeded, index-derived fault schedule: one firing rate per
/// [`FaultSite`], evaluated by hashing the event's index words.
///
/// Rates are probabilities in `[0, 1]`. A rate of `0` never fires (and
/// skips hashing entirely); a rate of `1` always fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed of the fault schedule.
    pub seed: u64,
    /// Probability that an acquisition attempt fails.
    pub acquire_rate: f64,
    /// Probability that one sweep repetition is dropped.
    pub rep_rate: f64,
    /// Probability that a calibration attempt diverges.
    pub calibrate_rate: f64,
    /// Probability that a stored block reads back corrupt (consulted by
    /// store-corruption harnesses, not by the measurement loop).
    pub store_rate: f64,
}

impl FaultPlan {
    /// The no-fault plan: every rate zero. [`FaultPlan::fires`] is
    /// constant `false` and costs no hashing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            acquire_rate: 0.0,
            rep_rate: 0.0,
            calibrate_rate: 0.0,
            store_rate: 0.0,
        }
    }

    /// `true` when no site can ever fire.
    pub fn is_none(&self) -> bool {
        self.acquire_rate <= 0.0
            && self.rep_rate <= 0.0
            && self.calibrate_rate <= 0.0
            && self.store_rate <= 0.0
    }

    /// The firing rate configured for `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Acquire => self.acquire_rate,
            FaultSite::Rep => self.rep_rate,
            FaultSite::Calibrate => self.calibrate_rate,
            FaultSite::StoreRead => self.store_rate,
        }
    }

    /// Whether the event identified by `ctx` fails at `site`.
    ///
    /// Pure in `(self.seed, site, ctx)`: the same words always produce
    /// the same verdict, regardless of call order or thread. Callers
    /// must include every index that names the event — and the attempt
    /// number, so a retry of the same event rolls a fresh decision.
    pub fn fires(&self, site: FaultSite, ctx: &[u64]) -> bool {
        let rate = self.rate(site);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut h = splitmix64(self.seed ^ site.tag());
        for &word in ctx {
            h = splitmix64(h ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        unit(h) < rate
    }
}

/// The acquisition seed for retry `attempt` of an event whose first
/// attempt uses `base`.
///
/// Attempt 0 returns `base` unchanged — the guarantee that lets the
/// fault-aware acquire path reproduce the historical no-fault streams
/// bit-for-bit. Later attempts derive fresh, decorrelated seeds, the
/// "backoff" being in seed space rather than wall-clock: a retry is a
/// re-measurement with new noise, not a replay of the failed one.
pub fn retry_seed(base: u64, attempt: usize) -> u64 {
    if attempt == 0 {
        return base;
    }
    splitmix64(base ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Repetition-level quarantine statistics of one acquisition attempt
/// (delay sweeps only; trace channels have no internal repetitions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepHealth {
    /// Sweep cells (pair × repetition) the attempt scheduled.
    pub attempted: usize,
    /// Sweep cells dropped by injected repetition faults.
    pub dropped: usize,
}

/// `splitmix64` finalizer: the avalanche permutation behind both the
/// decision hash and the retry-seed derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to the unit interval `[0, 1)` with 53 bits of precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half() -> FaultPlan {
        FaultPlan {
            seed: 7,
            acquire_rate: 0.5,
            rep_rate: 0.5,
            calibrate_rate: 0.5,
            store_rate: 0.5,
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_site_and_ctx() {
        let plan = half();
        for i in 0..64u64 {
            let ctx = [i, i * 3, i ^ 5, 0];
            assert_eq!(
                plan.fires(FaultSite::Acquire, &ctx),
                plan.fires(FaultSite::Acquire, &ctx)
            );
        }
        // Different sites and seeds decorrelate.
        let other = FaultPlan { seed: 8, ..half() };
        let agree_site = (0..256u64)
            .filter(|&i| plan.fires(FaultSite::Acquire, &[i]) == plan.fires(FaultSite::Rep, &[i]))
            .count();
        let agree_seed = (0..256u64)
            .filter(|&i| {
                plan.fires(FaultSite::Acquire, &[i]) == other.fires(FaultSite::Acquire, &[i])
            })
            .count();
        assert!(
            (64..192).contains(&agree_site),
            "sites correlated: {agree_site}"
        );
        assert!(
            (64..192).contains(&agree_seed),
            "seeds correlated: {agree_seed}"
        );
    }

    #[test]
    fn rate_extremes_short_circuit() {
        let none = FaultPlan::none();
        assert!(none.is_none());
        let all = FaultPlan {
            seed: 1,
            acquire_rate: 1.0,
            rep_rate: 0.0,
            calibrate_rate: 0.0,
            store_rate: 0.0,
        };
        assert!(!all.is_none());
        for i in 0..100u64 {
            assert!(!none.fires(FaultSite::Acquire, &[i]));
            assert!(all.fires(FaultSite::Acquire, &[i]));
            assert!(!all.fires(FaultSite::Rep, &[i]));
        }
    }

    #[test]
    fn observed_frequency_tracks_the_rate() {
        for &rate in &[0.1, 0.25, 0.5, 0.9] {
            let plan = FaultPlan {
                seed: 0xD1CE,
                acquire_rate: rate,
                rep_rate: 0.0,
                calibrate_rate: 0.0,
                store_rate: 0.0,
            };
            let n = 20_000u64;
            let hits = (0..n)
                .filter(|&i| plan.fires(FaultSite::Acquire, &[i, i / 7]))
                .count();
            let observed = hits as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.02,
                "rate {rate}: observed {observed}"
            );
        }
    }

    #[test]
    fn attempt_zero_retry_seed_is_the_identity() {
        for base in [0u64, 1, 42, u64::MAX] {
            assert_eq!(retry_seed(base, 0), base);
            let later: Vec<u64> = (1..5).map(|a| retry_seed(base, a)).collect();
            assert!(!later.contains(&base));
            let mut uniq = later.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), later.len(), "retry seeds collide for {base}");
        }
    }

    #[test]
    fn ctx_words_all_matter() {
        let plan = half();
        let base = [3u64, 1, 4, 1];
        let flips = (0..4)
            .filter(|&w| {
                let mut ctx = base;
                ctx[w] ^= 0x8000_0000_0000_0001;
                // Perturbing any single word must be *able* to flip the
                // verdict somewhere; scan a few neighbourhoods.
                (0..64u64).any(|k| {
                    let mut a = base;
                    let mut b = ctx;
                    a[3] = k;
                    b[3] = k;
                    if w == 3 {
                        b[3] = k ^ 0x8000_0000_0000_0001;
                    }
                    plan.fires(FaultSite::Acquire, &a) != plan.fires(FaultSite::Acquire, &b)
                })
            })
            .count();
        assert_eq!(flips, 4);
    }
}
