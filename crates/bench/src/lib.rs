//! Shared helpers for the `htd` benchmark harnesses.
//!
//! Every bench target in this crate regenerates one table or figure of the
//! DATE 2015 paper and prints the measured rows/series next to the values
//! the paper reports, so the shape comparison is immediate. See
//! EXPERIMENTS.md for the index.

use htd_core::Lab;

/// The fixed plaintext used by the EM experiments ("the plaintext is fixed
/// but unknown", Section IV).
pub const PT: [u8; 16] = [
    0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
];

/// The fixed key used by the EM experiments.
pub const KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

/// The common experimental bench.
pub fn lab() -> Lab {
    Lab::paper()
}

/// Prints a numeric series as aligned columns of `(index, value)` pairs,
/// downsampled to at most `max_points` evenly spaced points.
pub fn print_series(name: &str, values: &[f64], max_points: usize) {
    println!(
        "# series: {name} ({} points, showing ≤ {max_points})",
        values.len()
    );
    if values.is_empty() {
        return;
    }
    let stride = values.len().div_ceil(max_points).max(1);
    for (i, v) in values.iter().enumerate().step_by(stride) {
        println!("{i:>6} {v:>14.3}");
    }
}

/// Renders a compact ASCII sparkline of a series (8 levels).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| LEVELS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

/// Downsamples a series by taking the max magnitude in each bucket
/// (preserves peaks, which is what the figures care about).
pub fn downsample_peaks(values: &[f64], buckets: usize) -> Vec<f64> {
    if values.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let per = values.len().div_ceil(buckets).max(1);
    values
        .chunks(per)
        .map(|c| {
            c.iter()
                .cloned()
                .max_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite"))
                .unwrap_or(0.0)
        })
        .collect()
}

/// Prints a standard header naming the paper artefact being regenerated.
pub fn banner(artefact: &str, paper_says: &str) {
    println!("==================================================================");
    println!("= Reproducing: {artefact}");
    println!("= Paper reports: {paper_says}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_has_one_char_per_value() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    fn downsample_preserves_peaks() {
        let mut v = vec![0.0; 100];
        v[42] = -9.0;
        let d = downsample_peaks(&v, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[4], -9.0);
    }

    #[test]
    fn lab_builds() {
        let _ = lab();
        assert_eq!(PT.len(), 16);
        assert_eq!(KEY.len(), 16);
    }
}
