//! Ablation (Section V-B): the paper picks the **sum of local maxima** of
//! the deviation trace as its decision metric, arguing the HT evidence
//! concentrates at trace peaks and that summing them "can increase the HT
//! detection probability". This bench compares that metric against
//! single-point and norm alternatives.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::em_detect::{fn_rate_experiment_with_metric, SideChannel, TraceMetric};
use htd_core::report::{pct, Table};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Ablation — decision metric on the deviation trace",
        "summing the local maxima increases detection probability (Section V-B)",
    );
    let lab = lab();
    let n = 64;
    let metrics = [
        (TraceMetric::SumOfLocalMaxima, "Σ local maxima (paper)"),
        (TraceMetric::MaxPoint, "single max point"),
        (TraceMetric::SumAll, "Σ all samples (L1)"),
        (TraceMetric::L2Norm, "L2 norm"),
    ];
    println!("\nevaluating each metric over {n} dies (HT 1 and HT 2)...");
    let mut table = Table::new(&["metric", "HT 1: µ/σ", "HT 1: FN", "HT 2: µ/σ", "HT 2: FN"]);
    for (metric, label) in metrics {
        let report = fn_rate_experiment_with_metric(
            &htd_core::Engine::default(),
            &lab,
            &[TrojanSpec::ht1(), TrojanSpec::ht2()],
            SideChannel::Em,
            metric,
            n,
            &PT,
            &KEY,
            808,
        )
        .expect("experiment runs");
        table.push_row(&[
            label.to_string(),
            format!("{:.2}", report.rows[0].mu / report.rows[0].sigma),
            pct(report.rows[0].analytic_fn_rate),
            format!("{:.2}", report.rows[1].mu / report.rows[1].sigma),
            pct(report.rows[1].analytic_fn_rate),
        ]);
    }
    println!("{table}");
    println!("finding: in this substrate the deviation energy is spread over many");
    println!("correlated peaks (PV timing warp moves whole bursts), so all four");
    println!("scalarisations separate the populations almost equally — the");
    println!("paper's Σ-local-maxima choice is as good as any and needs no");
    println!("per-sample calibration, which supports using it, though we cannot");
    println!("reproduce a strict advantage over the single best sample here.");
}
