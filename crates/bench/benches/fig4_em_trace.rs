//! Fig. 4: one averaged EM trace of a single AES-128 encryption — "all the
//! ten rounds of encryption can be distinctively seen in this trace".

use htd_bench::{banner, downsample_peaks, lab, print_series, sparkline, KEY, PT};
use htd_core::report::{write_csv, Table};
use htd_core::{Design, ProgrammedDevice};

fn main() {
    banner(
        "Fig. 4 — averaged EM trace of one encryption",
        "~3000 samples at 5 GS/s / 24 MHz; 10 visible round bursts; good SNR after ×1000 averaging",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let trace = dev
        .acquire_em_trace(&PT, &KEY, 4)
        .expect("EM trace acquires");

    println!(
        "\ntrace: {} samples, dt = {} ps, peak = {:.0}, rms = {:.0}",
        trace.len(),
        trace.dt_ps(),
        trace.peak(),
        trace.rms()
    );
    println!("\nfull trace (peak-preserving downsample to 120 buckets):");
    println!("{}", sparkline(&downsample_peaks(trace.samples(), 120)));

    // Round visibility: RMS per clock cycle.
    let per_cycle = (lab.acquisition.clock_period_ps / trace.dt_ps()) as usize;
    let mut table = Table::new(&["cycle", "activity (rms)", "content"]);
    for c in 0..lab.acquisition.n_cycles {
        let window = trace.window(c * per_cycle, ((c + 1) * per_cycle).min(trace.len()));
        let content = match c {
            0 => "load + round 1 evaluation",
            1..=9 => "round evaluation",
            10 => "ciphertext capture",
            _ => "idle (done)",
        };
        table.push_row(&[
            c.to_string(),
            format!("{:.0}", window.rms()),
            content.into(),
        ]);
    }
    println!("\n{table}");
    print_series(
        "fig4_em_trace (downsampled)",
        &downsample_peaks(trace.samples(), 60),
        60,
    );

    let rows: Vec<Vec<String>> = trace
        .samples()
        .iter()
        .enumerate()
        .map(|(i, s)| vec![i.to_string(), format!("{s:.1}")])
        .collect();
    let path = "target/paper_figures/fig4_em_trace.csv";
    match write_csv(path, &["sample", "em"], &rows) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}
