//! Extension (Section VI perspectives): evaluating detection under
//! inter-die process variations "using both delay and EM measurements" —
//! each channel alone, then fused.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::channel::{DelayChannel, EmChannel, PowerChannel};
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{fusion_experiment, multi_channel_experiment};
use htd_core::report::{multi_channel_table, pct, Table};
use htd_core::CampaignPlan;
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Extension — fused delay + EM detection across dies",
        "the paper proposes using both channels for a more precise PV-aware evaluation",
    );
    let lab = lab();
    let n_dies = 48;
    println!("\nmeasuring EM traces and delay matrices over {n_dies} dies...");
    let report = fusion_experiment(
        &lab,
        &TrojanSpec::size_sweep(),
        n_dies,
        3, // (P,K) pairs in the delay campaign
        &PT,
        &KEY,
        4242,
    )
    .expect("experiment runs");

    let mut table = Table::new(&[
        "trojan",
        "EM µ/σ",
        "EM FN",
        "delay µ/σ",
        "delay FN",
        "fused µ/σ",
        "fused FN",
    ]);
    for row in &report.rows {
        table.push_row(&[
            row.name.clone(),
            format!("{:.2}", row.em.mu / row.em.sigma),
            pct(row.em.analytic_fn_rate),
            format!("{:.2}", row.delay.mu / row.delay.sigma),
            pct(row.delay.analytic_fn_rate),
            format!("{:.2}", row.fused.mu / row.fused.sigma),
            pct(row.fused.analytic_fn_rate),
        ]);
    }
    println!("{table}");

    // The same campaign through the generic channel runner, with the power
    // chain added as a third detector: per-channel and fused FN rates for
    // every trojan land in one report.
    let n3 = 24;
    println!("adding the power chain: EM + delay + power over {n3} dies...");
    let plan = CampaignPlan::with_random_pairs(n3, 3, 3, PT, KEY, 4242);
    let report3 = multi_channel_experiment(
        &lab,
        &plan,
        &TrojanSpec::size_sweep(),
        &[
            &EmChannel::paper(),
            &DelayChannel,
            &PowerChannel::new(TraceMetric::SumOfLocalMaxima),
        ],
    )
    .expect("three-channel experiment runs");
    println!("{}", multi_channel_table(&report3));

    println!("finding: both channels sense the same die personality (a fast die");
    println!("is fast in delay AND shifts its EM trace), so their golden noise is");
    println!("correlated and the naive z-sum lands between the two channels");
    println!("instead of gaining the independent-evidence √2. A PV-aware combined");
    println!("detector must whiten against the common die-speed factor first —");
    println!("a concrete answer to the paper's future-work question.");
}
