//! Engine ablation — worker count vs wall-clock on the Fig. 3 campaign
//! (50 pairs × 10 repetitions), plus a live check of the engine's core
//! guarantee: the measured `DelayMatrix` is **bit-identical at every
//! worker count, including 1**. Parallelism only changes when each sweep
//! runs, never what it measures.

use std::time::Instant;

use htd_bench::{banner, lab};
use htd_core::delay_detect::{characterize_golden_with, measure_matrix_with, DelayCampaign};
use htd_core::report::Table;
use htd_core::{Design, Engine, ProgrammedDevice};

fn main() {
    banner(
        "Ablation — engine worker count on the Fig. 3 campaign",
        "50 pairs × 10 sweeps; bit-identical results at every worker count",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let die = lab.fabricate_die(0);
    let campaign = DelayCampaign::paper(0xF1633);

    // Characterise once (serial) to pin the sweep parameters every run
    // below shares.
    println!("\ncharacterising the golden model (serial)...");
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let model = characterize_golden_with(&Engine::serial(), &gdev, campaign.clone())
        .expect("golden characterisation succeeds");

    let auto = Engine::auto().workers();
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&auto) {
        counts.push(auto);
    }
    println!("machine reports {auto} available workers (HTD_WORKERS overrides)");

    let mut table = Table::new(&["workers", "wall (s)", "speedup vs 1", "matrix"]);
    let mut reference: Option<(htd_core::delay_detect::DelayMatrix, f64)> = None;
    for &w in &counts {
        // A fresh device per run: cold caches, so every run performs the
        // same simulation work.
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        let t0 = Instant::now();
        let matrix =
            measure_matrix_with(&Engine::with_workers(w), &dev, &campaign, &model.params, 1)
                .expect("matrix measurement succeeds");
        let dt = t0.elapsed().as_secs_f64();
        let (identical, speedup) = match &reference {
            None => {
                reference = Some((matrix.clone(), dt));
                (true, 1.0)
            }
            Some((ref_matrix, ref_dt)) => (matrix == *ref_matrix, ref_dt / dt),
        };
        assert!(identical, "matrix diverged at {w} workers");
        table.push_row(&[
            w.to_string(),
            format!("{dt:.2}"),
            format!("{speedup:.2}×"),
            "bit-identical".to_string(),
        ]);
    }
    println!("\n{table}");
    println!("the campaign fans per pair (settle simulation, cached) and per");
    println!("pair × repetition (noise sweeps, index-seeded), so wall-clock");
    println!("scales with cores while every matrix stays bit-identical.");
}
