//! Baseline (Section I/IV motivation): EM "provides a better spatial and
//! temporal resolution than power measurements hence improving HT
//! detection result". Same Section V experiment, both chains.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::em_detect::{fn_rate_experiment, SideChannel};
use htd_core::report::{pct, Table};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Baseline — EM probe vs global power measurement",
        "EM's spatial/temporal resolution beats the power side channel",
    );
    let lab = lab();
    let n = 96;
    let mut table = Table::new(&[
        "trojan",
        "EM: µ/σ",
        "EM: FN (Eq.5)",
        "Power: µ/σ",
        "Power: FN (Eq.5)",
    ]);
    println!("\nrunning both chains over {n} dies...");
    let em = fn_rate_experiment(
        &lab,
        &TrojanSpec::size_sweep(),
        SideChannel::Em,
        n,
        &PT,
        &KEY,
        31,
    )
    .expect("EM experiment runs");
    let pw = fn_rate_experiment(
        &lab,
        &TrojanSpec::size_sweep(),
        SideChannel::Power,
        n,
        &PT,
        &KEY,
        31,
    )
    .expect("power experiment runs");
    for (e, p) in em.rows.iter().zip(&pw.rows) {
        table.push_row(&[
            e.name.clone(),
            format!("{:.2}", e.mu / e.sigma),
            pct(e.analytic_fn_rate),
            format!("{:.2}", p.mu / p.sigma),
            pct(p.analytic_fn_rate),
        ]);
    }
    println!("{table}");
    println!("the RC-filtered, position-blind power chain separates the");
    println!("populations less than the ringing near-field probe — the paper's");
    println!("motivation for measuring EM instead of supply current.");
}
