//! Ablation (Section V-B): the HT's EM offset "depends on the HT size,
//! placement and position relative to the probe in case of EM
//! acquisitions". This bench scans the probe and re-runs the detection
//! with the probe parked at different positions.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::em_detect::{fn_rate_experiment, SideChannel};
use htd_core::report::{pct, Table};
use htd_core::{Design, ProgrammedDevice};
use htd_em::scan::{hottest, scan, ScanGrid};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Ablation — probe position vs detection",
        "the HT offset depends on its position relative to the probe",
    );
    let mut lab = lab();

    // First, a cartography pass over the golden design to find the global
    // activity hotspot (what a lab does before parking the probe).
    let golden = Design::golden(&lab).expect("golden design builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let events = dev
        .timed_encryption_activity(&PT, &KEY)
        .expect("timed simulation succeeds");
    let grid = ScanGrid::over_device(lab.device.config().cols(), lab.device.config().rows(), 5);
    let map = scan(&events, &lab.em, &lab.acquisition, &grid, 3);
    let hot = hottest(&map).expect("scan non-empty");
    println!(
        "\ncartography: hottest probe position ({:.0},{:.0}) rms {:.0}",
        hot.position.0, hot.position.1, hot.rms
    );

    // The trojan region: infected designs place their cells past the AES
    // block; aim one probe position there, one at the die centre, one at
    // the far corner.
    let infected = Design::infected(&lab, &TrojanSpec::ht1()).expect("insertion succeeds");
    let trojan_slice = infected.trojan().unwrap().slices[0];
    let positions = [
        ("over the trojan", trojan_slice.center()),
        ("die centre (default)", lab.device.center()),
        (
            "far corner",
            (
                lab.device.config().cols() as f64 - 1.0,
                lab.device.config().rows() as f64 - 1.0,
            ),
        ),
    ];

    let n = 48;
    let mut table = Table::new(&["probe position", "HT 1: µ/σ", "HT 1: FN (Eq.5)"]);
    for (label, pos) in positions {
        lab.em.probe.position = pos;
        let report = fn_rate_experiment(
            &lab,
            &[TrojanSpec::ht1()],
            SideChannel::Em,
            n,
            &PT,
            &KEY,
            909,
        )
        .expect("experiment runs");
        table.push_row(&[
            format!("{label} ({:.0},{:.0})", pos.0, pos.1),
            format!("{:.2}", report.rows[0].mu / report.rows[0].sigma),
            pct(report.rows[0].analytic_fn_rate),
        ]);
    }
    println!("{table}");
    println!("parking the probe near the trojan's slices improves the separation —");
    println!("modestly here, because the RFU-5-2-class probe is near-global (its");
    println!("aperture spans the die); a smaller-aperture probe sharpens the");
    println!("gradient. This is the spatial-resolution lever the paper claims for");
    println!("EM over the position-blind power measurement.");
}
