//! Criterion performance benchmarks of the simulation substrates: how fast
//! the suite elaborates, simulates and measures the AES target.

use criterion::{criterion_group, criterion_main, Criterion};
use htd_aes::structural::{AesNetlist, AesSim};
use htd_bench::{lab, KEY, PT};
use htd_core::{Design, ProgrammedDevice};
use htd_timing::{DelayAnnotation, EventSimulator};

fn bench_generate(c: &mut Criterion) {
    c.bench_function("aes_netlist_generate", |b| {
        b.iter(|| AesNetlist::generate().expect("generates"))
    });
}

fn bench_functional_encrypt(c: &mut Criterion) {
    let aes = AesNetlist::generate().expect("generates");
    c.bench_function("functional_encrypt_block", |b| {
        let mut sim = AesSim::new(&aes).expect("simulates");
        b.iter(|| sim.encrypt(&PT, &KEY))
    });
}

fn bench_timed_round(c: &mut Criterion) {
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let aes = golden.aes();
    let mut sim = AesSim::new(aes).expect("simulates");
    sim.start(&PT, &KEY);
    for _ in 0..8 {
        sim.step_round();
    }
    let snapshot = sim.simulator().snapshot();
    c.bench_function("timed_round10_event_sim", |b| {
        b.iter(|| {
            let mut esim = EventSimulator::from_snapshot(aes.netlist(), snapshot.clone());
            esim.clock_cycle(dev.annotation())
        })
    });
}

fn bench_em_acquisition(c: &mut Criterion) {
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    c.bench_function("em_trace_full_encryption", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            dev.acquire_em_trace(&PT, &KEY, seed)
        })
    });
}

fn bench_annotation(c: &mut Criterion) {
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    c.bench_function("delay_annotation", |b| {
        b.iter(|| {
            DelayAnnotation::annotate(golden.aes().netlist(), golden.placement(), &lab.tech, &die)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generate, bench_functional_encrypt, bench_timed_round, bench_em_acquisition, bench_annotation
}
criterion_main!(benches);
