//! Ablation (Section IV): trace averaging vs detectability. The paper
//! averages each trace 1000× on the oscilloscope "to minimize the
//! measurement noise"; this sweep shows how the same-die comparison
//! degrades at lower averaging factors.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::em_detect::direct_compare;
use htd_core::report::Table;
use htd_core::{Design, ProgrammedDevice};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Ablation — oscilloscope averaging factor vs same-die detection",
        "the paper's x1000 averaging makes setup noise negligible (Fig. 5)",
    );
    let mut lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).expect("insertion succeeds");
    let die = lab.fabricate_die(0);

    let mut table = Table::new(&[
        "averages",
        "noise floor |G1-G2|",
        "HT deviation |G1-T|",
        "ratio",
        "verdict",
    ]);
    for averages in [1usize, 10, 100, 1_000, 10_000] {
        lab.acquisition.averages = averages;
        let gdev = ProgrammedDevice::new(&lab, &golden, &die);
        let tdev = ProgrammedDevice::new(&lab, &infected, &die);
        let g1 = gdev
            .acquire_em_trace(&PT, &KEY, 1_000 + averages as u64)
            .expect("EM trace acquires");
        let g2 = gdev
            .acquire_em_trace(&PT, &KEY, 2_000 + averages as u64)
            .expect("EM trace acquires");
        let t = tdev
            .acquire_em_trace(&PT, &KEY, 3_000 + averages as u64)
            .expect("EM trace acquires");
        let cmp = direct_compare(&g1, &g2, &t);
        table.push_row(&[
            averages.to_string(),
            format!("{:.0}", cmp.noise_floor),
            format!("{:.0}", cmp.max_abs_diff),
            format!("{:.1}x", cmp.max_abs_diff / cmp.noise_floor.max(1e-9)),
            if cmp.infected {
                "HT!"
            } else {
                "not distinguishable"
            }
            .to_string(),
        ]);
    }
    println!("\n{table}");
    println!("single-shot traces bury the trojan under scope noise; by the");
    println!("paper's x1000 the deviation stands far above the setup-noise floor.");
}
