//! Per-stage benchmarks of the acquisition hot path: compiled event
//! simulation, SoA activity collection, event binning, dense
//! convolution, and the per-rep noise/quantise replay. Together with
//! `perf.rs` these pin where the time goes inside one `acquire.EM`
//! span (see EXPERIMENTS.md, "Where the time goes").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use htd_aes::structural::AesSim;
use htd_bench::{lab, KEY, PT};
use htd_core::{Design, ProgrammedDevice};
use htd_em::{bin_events, convolve_kernel, read_out, EventBatch};
use htd_timing::{CompiledSimulator, CompiledTiming};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_compile_timing(c: &mut Criterion) {
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    c.bench_function("compile_timing_tables", |b| {
        b.iter(|| CompiledTiming::compile(golden.aes().netlist(), dev.annotation()))
    });
}

fn bench_compiled_full_encryption(c: &mut Criterion) {
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let aes = golden.aes();
    let ct = CompiledTiming::compile(aes.netlist(), dev.annotation());
    let mut fsim = aes.netlist().simulator().expect("simulates");
    fsim.set_bus_bytes(aes.plaintext(), &PT);
    fsim.set_bus_bytes(aes.key(), &KEY);
    fsim.set(aes.load(), true);
    fsim.settle();
    let snapshot = fsim.snapshot();
    let n_cycles = lab.acquisition.n_cycles;
    c.bench_function("compiled_sim_full_encryption", |b| {
        b.iter(|| {
            let mut esim = CompiledSimulator::from_snapshot(&ct, snapshot.clone());
            esim.set_input(aes.load(), false);
            let mut toggles = 0usize;
            for _ in 0..n_cycles {
                toggles += esim.clock_cycle().toggles.len();
            }
            toggles
        })
    });
}

fn bench_kernel_stages(c: &mut Criterion) {
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let events = dev
        .timed_encryption_activity(&PT, &KEY)
        .expect("activity simulates");
    let em = &lab.em;
    let batch = EventBatch::from_events(&events, |e| em.probe.coupling(e.position));
    let dt = em.scope.sample_period_ps;
    let kernel = em.probe.impulse_response(dt);
    let n = lab.acquisition.n_samples(dt);

    let mut impulses = Vec::new();
    c.bench_function("bin_events_full_encryption", |b| {
        b.iter(|| bin_events(batch.times_ps(), batch.charges(), dt, n, &mut impulses))
    });

    let mut clean = Vec::new();
    c.bench_function("convolve_probe_kernel", |b| {
        b.iter(|| convolve_kernel(&impulses, &kernel, &mut clean))
    });

    c.bench_function("read_out_noise_pass", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            read_out(
                &clean,
                &em.scope,
                em.gain,
                em.setup_gain_jitter,
                lab.acquisition.averages,
                &mut rng,
            )
        })
    });
}

fn bench_warm_acquire_rep(c: &mut Criterion) {
    // A repeated acquisition on a warm device: the activity and
    // clean-signal caches hit, so each rep pays only the read-out —
    // the per-rep cost of an averaging study.
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    dev.acquire_em_trace(&PT, &KEY, 0)
        .expect("warms the caches");
    c.bench_function("acquire_em_trace_warm_rep", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            dev.acquire_em_trace(&PT, &KEY, seed)
        })
    });
}

fn bench_settle_times(c: &mut Criterion) {
    let lab = lab();
    let golden = Design::golden(&lab).expect("builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let aes = golden.aes();
    let mut sim = AesSim::new(aes).expect("simulates");
    sim.start(&PT, &KEY);
    for _ in 0..8 {
        sim.step_round();
    }
    let snapshot = sim.simulator().snapshot();
    let ct = CompiledTiming::compile(aes.netlist(), dev.annotation());
    c.bench_function("compiled_round10_cycle", |b| {
        b.iter(|| {
            let mut esim = CompiledSimulator::from_snapshot(&ct, snapshot.clone());
            black_box(esim.clock_cycle())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile_timing, bench_compiled_full_encryption, bench_kernel_stages, bench_warm_acquire_rep, bench_settle_times
}
criterion_main!(benches);
