//! Ablation (Section III-B): "One can highlight on the importance to study
//! not only the critical path but all the data path delays."
//!
//! Detection power when observing only the slowest (critical) ciphertext
//! bit vs all 128 bits.

use htd_bench::{banner, lab};
use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::report::{ps, Table};
use htd_core::{Design, ProgrammedDevice};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Ablation — critical-path-only vs all-bits delay detection",
        "each wire is a HT sensor; restricting to the critical path loses evidence",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let die = lab.fabricate_die(0);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let campaign = DelayCampaign::random(20, 10, 0xAB1A);
    let detector = DelayDetector::new(
        characterize_golden(&gdev, campaign).expect("golden characterisation succeeds"),
    );

    // The "critical bit" per pair = the bit with the earliest golden fault
    // onset (slowest path).
    let critical_bits: Vec<usize> = detector
        .golden()
        .matrix
        .mean_onset_steps
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect();

    let mut table = Table::new(&[
        "trojan",
        "all bits: max |ΔD|",
        "all bits: flagged",
        "critical bit only: max |ΔD|",
        "critical only: flagged pairs",
    ]);
    for spec in [TrojanSpec::ht_comb(), TrojanSpec::ht_seq()] {
        let infected = Design::infected(&lab, &spec).expect("insertion succeeds");
        let dut = ProgrammedDevice::new(&lab, &infected, &die);
        let evidence = detector.examine(&dut, 42).expect("examination succeeds");
        // Restrict to the per-pair critical bit.
        let crit_diffs: Vec<f64> = evidence
            .diff_ps
            .iter()
            .zip(&critical_bits)
            .map(|(row, &b)| row[b])
            .collect();
        let crit_max = crit_diffs.iter().cloned().fold(0.0, f64::max);
        let crit_flagged = crit_diffs.iter().filter(|&&d| d > 70.0).count();
        table.push_row(&[
            spec.name.clone(),
            ps(evidence.max_diff_ps),
            format!("{} bits", evidence.flagged_bits),
            ps(crit_max),
            format!("{crit_flagged}/{} pairs", crit_diffs.len()),
        ]);
    }
    println!("\n{table}");
    println!("observing all 128 bits flags far more evidence than the critical");
    println!("path alone — the paper's argument for sampling every data path.");
}
