//! Section V-B headline table: false-negative rate vs trojan size, with
//! the sum-of-local-maxima metric under inter-die process variations.
//!
//! Paper: HT 1 (0.5 %) → 26 %, HT 2 (1.0 %) → 17 %, HT 3 (1.7 %) → 5 %;
//! i.e. detection probability > 95 % for trojans ≥ 1.7 % of the AES.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::em_detect::{fn_rate_experiment, SideChannel};
use htd_core::report::{pct, Table};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Section V-B — false-negative rates vs trojan size",
        "FN = 26% / 17% / 5% for HT sizes 0.5% / 1.0% / 1.7% of the AES",
    );
    let lab = lab();
    let paper = ["26%", "17%", "5%"];

    // First with the paper's population: 8 physical dies.
    println!("\n--- 8 dies (the paper's batch) ---");
    let report8 = fn_rate_experiment(
        &lab,
        &TrojanSpec::size_sweep(),
        SideChannel::Em,
        8,
        &PT,
        &KEY,
        8,
    )
    .expect("experiment runs");
    let mut t8 = Table::new(&["trojan", "size (AES)", "µ/σ", "FN (Eq.5)", "FN paper"]);
    for (row, paper_fn) in report8.rows.iter().zip(paper) {
        t8.push_row(&[
            row.name.clone(),
            pct(row.size_fraction),
            format!("{:.2}", row.mu / row.sigma),
            pct(row.analytic_fn_rate),
            paper_fn.to_string(),
        ]);
    }
    println!("{t8}");

    // Then a Monte-Carlo population (the paper's proposed n >> 8) for
    // stable estimates.
    let n = 192;
    println!("--- {n} dies (Monte-Carlo, the paper's n >> 8 perspective) ---");
    let report = fn_rate_experiment(
        &lab,
        &TrojanSpec::size_sweep(),
        SideChannel::Em,
        n,
        &PT,
        &KEY,
        555,
    )
    .expect("experiment runs");
    let mut table = Table::new(&[
        "trojan",
        "size (AES)",
        "µ/σ",
        "FN analytic (Eq.5)",
        "FN empirical",
        "FP empirical",
        "detection",
        "FN paper",
    ]);
    for (row, paper_fn) in report.rows.iter().zip(paper) {
        table.push_row(&[
            row.name.clone(),
            pct(row.size_fraction),
            format!("{:.2}", row.mu / row.sigma),
            pct(row.analytic_fn_rate),
            pct(row.empirical_fn_rate),
            pct(row.empirical_fp_rate),
            pct(row.detection_probability()),
            paper_fn.to_string(),
        ]);
    }
    println!("{table}");
    println!("shape check: FN decreases monotonically with size; the 0.5% HT is");
    println!("hard under PV; the 1.7% HT clears the paper's >95% detection bar.");
    println!("(our µ grows faster with size than the authors' — see EXPERIMENTS.md)");
}
