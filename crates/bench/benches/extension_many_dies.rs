//! Extension (Section VI perspectives): "conducting the same experiments
//! on n FPGAs, where n ≫ 8" — how the FN-rate estimate converges as the
//! die population grows.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::em_detect::{fn_rate_experiment, SideChannel};
use htd_core::report::{pct, Table};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Extension — FN-rate estimation with n >> 8 dies",
        "the paper proposes repeating the study on many more FPGAs",
    );
    let lab = lab();
    let mut table = Table::new(&[
        "dies",
        "HT 2: µ/σ",
        "HT 2: FN analytic",
        "HT 2: FN empirical",
    ]);
    for n in [8usize, 16, 32, 64, 128, 256] {
        let report = fn_rate_experiment(
            &lab,
            &[TrojanSpec::ht2()],
            SideChannel::Em,
            n,
            &PT,
            &KEY,
            1234,
        )
        .expect("experiment runs");
        let r = &report.rows[0];
        table.push_row(&[
            n.to_string(),
            format!("{:.2}", r.mu / r.sigma),
            pct(r.analytic_fn_rate),
            pct(r.empirical_fn_rate),
        ]);
    }
    println!("\n{table}");
    println!("8 dies give a noisy estimate of µ/σ (the paper's own caveat);");
    println!("the analytic Eq. (5) rate stabilises once n reaches a few dozen.");
}
