//! Fig. 6: impact of inter-die process variations — the deviation traces
//! `Dg_j = |G_j − E₈(G)|` of 8 golden dies vs `Dt_j = |T_j − E₈(G)|` of
//! the HT 2 (1 %) infected design on the same 8 dies.
//!
//! Paper: the genuine deviations form a PV fluctuation band; the HT 2
//! deviations exceed it at certain samples, so points of interest exist.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::em_detect::{characterize_em_golden, SideChannel};
use htd_core::report::Table;
use htd_core::{Design, ProgrammedDevice};
use htd_em::Trace;
use htd_stats::peaks::sum_of_local_maxima;
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Fig. 6 — inter-die PV: |G_j − E₈(G)| vs |T_j − E₈(G)| (HT 2)",
        "HT 2 (1%) deviations exceed the PV fluctuation band at specific samples",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let infected = Design::infected(&lab, &TrojanSpec::ht2()).expect("insertion succeeds");
    let dies = lab.fabricate_batch(8);
    let model = characterize_em_golden(&lab, &golden, &dies, SideChannel::Em, &PT, &KEY, 6000)
        .expect("golden characterisation succeeds");

    let mut table = Table::new(&[
        "die",
        "genuine: max Dg",
        "genuine: Σ local maxima",
        "infected: max Dt",
        "infected: Σ local maxima",
    ]);
    let mut g_metrics = Vec::new();
    let mut t_metrics = Vec::new();
    for (j, die) in dies.iter().enumerate() {
        let g = ProgrammedDevice::new(&lab, &golden, die)
            .acquire_em_trace(&PT, &KEY, 6000 + j as u64)
            .expect("EM trace acquires");
        let t = ProgrammedDevice::new(&lab, &infected, die)
            .acquire_em_trace(&PT, &KEY, 7000 + j as u64)
            .expect("EM trace acquires");
        let dg: Trace = g.abs_diff(&model.mean_trace);
        let dt: Trace = t.abs_diff(&model.mean_trace);
        let (mg, mt) = (
            sum_of_local_maxima(dg.samples()),
            sum_of_local_maxima(dt.samples()),
        );
        g_metrics.push(mg);
        t_metrics.push(mt);
        table.push_row(&[
            j.to_string(),
            format!("{:.0}", dg.peak()),
            format!("{mg:.0}"),
            format!("{:.0}", dt.peak()),
            format!("{mt:.0}"),
        ]);
    }
    println!("\n{table}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean Σ-local-maxima: genuine {:.0}, HT 2 infected {:.0} (ratio {:.2})",
        mean(&g_metrics),
        mean(&t_metrics),
        mean(&t_metrics) / mean(&g_metrics)
    );
    let overlap = t_metrics
        .iter()
        .filter(|&&t| g_metrics.iter().any(|&g| g >= t))
        .count();
    println!(
        "{overlap}/8 infected dies fall inside the genuine band (the residual confusion Eq. 5 quantifies)"
    );
}
