//! Ablation (Section III-B): "the more (P,K) pairs are studied, the more
//! bits will be sampled, the more evidence about HT presence is collected.
//! Furthermore, the false positive rate is decreased."

use htd_bench::{banner, lab};
use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::report::{ps, Table};
use htd_core::{Design, ProgrammedDevice};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Ablation — evidence vs number of (P,K) pairs",
        "more pairs sample more bits and accumulate more evidence",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).expect("insertion succeeds");
    let die = lab.fabricate_die(0);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let dut = ProgrammedDevice::new(&lab, &infected, &die);
    let clean = ProgrammedDevice::new(&lab, &golden, &die);

    let campaign = DelayCampaign::paper(0x0A12);
    let detector = DelayDetector::new(
        characterize_golden(&gdev, campaign).expect("golden characterisation succeeds"),
    );

    let mut table = Table::new(&[
        "pairs",
        "HT: flagged bits",
        "HT: max |ΔD|",
        "HT verdict",
        "clean: flagged bits",
        "clean verdict",
    ]);
    for n in [1usize, 2, 5, 10, 20, 35, 50] {
        let e = detector
            .examine_pairs(&dut, 9, n)
            .expect("n within campaign");
        let c = detector
            .examine_pairs(&clean, 10, n)
            .expect("n within campaign");
        table.push_row(&[
            n.to_string(),
            e.flagged_bits.to_string(),
            ps(e.max_diff_ps),
            if e.infected { "HT!" } else { "clean" }.to_string(),
            c.flagged_bits.to_string(),
            if c.infected { "HT!" } else { "clean" }.to_string(),
        ]);
    }
    println!("\n{table}");
    println!("flagged-bit coverage grows with the pair count while the clean");
    println!("device stays unflagged — evidence accumulates without false positives.");
}
