//! Fig. 5: same die, same plaintext — two genuine averaged traces taken at
//! different times are nearly identical (setup noise cancels at ×1000
//! averaging), while the infected trace deviates at specific samples.

use htd_bench::{banner, lab, sparkline, KEY, PT};
use htd_core::em_detect::direct_compare;
use htd_core::report::Table;
use htd_core::{Design, ProgrammedDevice};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Fig. 5 — same-die averaged-trace comparison",
        "Genuine1 ≈ Genuine2 (setup noise removed by averaging); infected AES differs at some samples",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).expect("insertion succeeds");
    let die = lab.fabricate_die(0);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let tdev = ProgrammedDevice::new(&lab, &infected, &die);

    // Two genuine captures with the bench torn down and re-installed in
    // between (fresh measurement seed = fresh installation gain), then the
    // infected capture with the same plaintext.
    let g1 = gdev
        .acquire_em_trace(&PT, &KEY, 1001)
        .expect("EM trace acquires");
    let g2 = gdev
        .acquire_em_trace(&PT, &KEY, 2002)
        .expect("EM trace acquires");
    let t = tdev
        .acquire_em_trace(&PT, &KEY, 3003)
        .expect("EM trace acquires");

    let cmp = direct_compare(&g1, &g2, &t);
    let mut table = Table::new(&["comparison", "max |Δ|", "interpretation"]);
    table.push_row(&[
        "Genuine1 vs Genuine2".into(),
        format!("{:.0}", cmp.noise_floor),
        "setup/measurement noise floor".to_string(),
    ]);
    table.push_row(&[
        "Genuine1 vs Infected".into(),
        format!("{:.0}", cmp.max_abs_diff),
        format!(
            "{} (>3x floor ⇒ HT)",
            if cmp.infected { "HT DETECTED" } else { "no HT" }
        ),
    ]);
    println!("\n{table}");

    // Zoom on the region of the biggest deviation, like the Fig. 5 inset.
    let from = cmp.argmax.saturating_sub(16);
    let to = (cmp.argmax + 16).min(t.len());
    println!("zoom on samples {from}..{to} (inset of Fig. 5):");
    println!("  genuine1: {}", sparkline(g1.window(from, to).samples()));
    println!("  genuine2: {}", sparkline(g2.window(from, to).samples()));
    println!("  infected: {}", sparkline(t.window(from, to).samples()));
    println!(
        "\nlargest deviation at sample {} ({}x the noise floor)",
        cmp.argmax,
        (cmp.max_abs_diff / cmp.noise_floor.max(1e-9)).round()
    );
}
