//! Fig. 3: per-bit delay differences vs the golden model, for two clean
//! re-measurements and both paper trojans, shown (like the paper) for the
//! representative pairs #13 and #47 of a 50-pair campaign.
//!
//! Paper: clean curves hug zero; HT-comb and HT-seq shift many bits, up to
//! ~1.4 ns, although neither sits on the critical path.

use htd_bench::{banner, lab, sparkline};
use htd_core::delay_detect::{characterize_golden_with, DelayCampaign, DelayDetector};
use htd_core::report::{ps, write_csv, Table};
use htd_core::{Design, Engine, ProgrammedDevice};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Fig. 3 — per-bit delay differences (pairs #13 and #47 of 50)",
        "Clean1/Clean2 ≈ 0; HT-comb and HT-seq shift bits by up to ~1.4 ns",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let die = lab.fabricate_die(0);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);

    // The paper's campaign: 50 pairs, 10 repetitions, fanned across the
    // measurement engine (see the ablation_threads bench for the
    // worker-count study; the figure is bit-identical at any count).
    let engine = Engine::auto();
    let campaign = DelayCampaign::paper(0xF1633);
    println!(
        "\ncharacterising the golden model (50 pairs × 10 sweeps, {} workers)...",
        engine.workers()
    );
    let detector = DelayDetector::new(
        characterize_golden_with(&engine, &gdev, campaign)
            .expect("golden characterisation succeeds"),
    );

    let designs: Vec<(String, Design, u64)> = vec![
        ("Clean1".into(), golden.clone(), 101),
        ("Clean2".into(), golden.clone(), 202),
        (
            "HTcomb".into(),
            Design::infected(&lab, &TrojanSpec::ht_comb()).expect("insertion succeeds"),
            303,
        ),
        (
            "HTseq".into(),
            Design::infected(&lab, &TrojanSpec::ht_seq()).expect("insertion succeeds"),
            404,
        ),
    ];

    let mut summary = Table::new(&["design", "max |ΔD|", "bits > 70 ps", "verdict", "paper"]);
    let mut csv_rows: Vec<Vec<String>> = (0..128).map(|b| vec![b.to_string()]).collect();
    let mut csv_headers: Vec<String> = vec!["bit".into()];
    for (name, design, salt) in &designs {
        let dev = ProgrammedDevice::new(&lab, design, &die);
        let evidence = detector
            .examine_with(&engine, &dev, *salt)
            .expect("examination succeeds");
        for pair in [13usize, 47] {
            let series = &evidence.diff_ps[pair];
            println!(
                "{name:>7} pair #{pair:<2} |ΔD| per bit: {}",
                sparkline(series)
            );
            csv_headers.push(format!("{name}_pair{pair}_ps"));
            for (b, v) in series.iter().enumerate() {
                csv_rows[b].push(format!("{v:.1}"));
            }
        }
        let expected = match name.as_str() {
            "Clean1" | "Clean2" => "≈0 (no HT)",
            _ => "large shifts, detected",
        };
        summary.push_row(&[
            name.clone(),
            ps(evidence.max_diff_ps),
            evidence.flagged_bits.to_string(),
            if evidence.infected { "HT!" } else { "clean" }.to_string(),
            expected.to_string(),
        ]);
    }
    println!("\n{summary}");
    println!("each sparkline is 128 bits wide; spikes are HT-shifted bits.");

    let headers: Vec<&str> = csv_headers.iter().map(String::as_str).collect();
    let path = "target/paper_figures/fig3_delay_differences.csv";
    match write_csv(path, &headers, &csv_rows) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}
