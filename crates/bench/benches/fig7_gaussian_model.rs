//! Fig. 7 + Eq. (5): the two-Gaussian model of the detection metric — the
//! genuine and infected populations are Gaussians separated by an offset
//! µ that depends on HT size; the midpoint threshold gives
//! `P_fn = P_fp = 1/2 − ½·erf(µ / (2σ√2))`.
//!
//! The harness additionally *tests* the Gaussian assumption with a
//! Kolmogorov–Smirnov check on both measured populations — the paper takes
//! it from ref. \[6\] (Bowman et al.) without testing it.

use htd_bench::{banner, lab, sparkline, KEY, PT};
use htd_core::em_detect::{characterize_em_golden, SideChannel};
use htd_core::report::{pct, write_csv, Table};
use htd_core::{Design, ProgrammedDevice};
use htd_stats::detection::equal_error_rate;
use htd_stats::ks::ks_test_normal;
use htd_stats::peaks::sum_of_local_maxima;
use htd_stats::Gaussian;
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Fig. 7 — Gaussian populations of the metric + Eq. (5)",
        "genuine and infected metric distributions are offset Gaussians; Eq. 5 maps µ/σ to FN=FP",
    );
    let lab = lab();
    // A larger population than the paper's 8 dies to draw clean pdfs.
    let n_dies = 64;
    println!("\nmeasuring both populations over {n_dies} virtual dies (HT 2)...");
    let golden = Design::golden(&lab).expect("golden design builds");
    let infected = Design::infected(&lab, &TrojanSpec::ht2()).expect("insertion succeeds");
    let dies = lab.fabricate_batch(n_dies);
    let model = characterize_em_golden(&lab, &golden, &dies, SideChannel::Em, &PT, &KEY, 777)
        .expect("golden characterisation succeeds");
    let infected_metrics: Vec<f64> = dies
        .iter()
        .enumerate()
        .map(|(j, die)| {
            let t = ProgrammedDevice::new(&lab, &infected, die)
                .acquire_em_trace(&PT, &KEY, 0x1777 + j as u64)
                .expect("EM trace acquires");
            sum_of_local_maxima(t.abs_diff(&model.mean_trace).samples())
        })
        .collect();

    let g = Gaussian::fit(&model.golden_metrics).expect("population has spread");
    let t_fit = Gaussian::fit(&infected_metrics).expect("population has spread");
    let mu = t_fit.mean() - g.mean();
    let sigma = ((g.std() * g.std() + t_fit.std() * t_fit.std()) / 2.0).sqrt();

    // Render the two pdfs over the populated range (the Fig. 7 shape).
    let lo = g.mean() - 4.0 * sigma;
    let hi = t_fit.mean() + 4.0 * sigma;
    let xs: Vec<f64> = (0..100).map(|i| lo + (hi - lo) * i as f64 / 99.0).collect();
    let g_pdf: Vec<f64> = xs.iter().map(|&x| g.pdf(x)).collect();
    let t_pdf: Vec<f64> = xs.iter().map(|&x| t_fit.pdf(x)).collect();
    println!("genuine  pdf: {}", sparkline(&g_pdf));
    println!("infected pdf: {}", sparkline(&t_pdf));
    println!(
        "              (µ = {:.0}, common σ = {:.0}, µ/σ = {:.2})",
        mu,
        sigma,
        mu / sigma
    );

    // Is the Gaussian model itself justified? KS-test both populations.
    let ks_g = ks_test_normal(&model.golden_metrics).expect("enough samples");
    let ks_t = ks_test_normal(&infected_metrics).expect("enough samples");

    let mut table = Table::new(&["quantity", "value", "note"]);
    table.push_row(&[
        "µ (metric offset)".into(),
        format!("{mu:.0}"),
        "HT 2 (1% of AES)".to_string(),
    ]);
    table.push_row(&[
        "σ (PV spread)".into(),
        format!("{sigma:.0}"),
        "inter-die process variations".to_string(),
    ]);
    table.push_row(&[
        "Eq. (5) P_fn = P_fp".into(),
        pct(equal_error_rate(mu, sigma)),
        "analytic, midpoint threshold".to_string(),
    ]);
    table.push_row(&[
        "KS test, genuine pop.".into(),
        format!("D = {:.3}, p = {:.2}", ks_g.statistic, ks_g.p_value),
        if ks_g.is_plausible() {
            "Gaussian plausible ✓"
        } else {
            "Gaussian REJECTED"
        }
        .to_string(),
    ]);
    table.push_row(&[
        "KS test, infected pop.".into(),
        format!("D = {:.3}, p = {:.2}", ks_t.statistic, ks_t.p_value),
        if ks_t.is_plausible() {
            "Gaussian plausible ✓"
        } else {
            "Gaussian REJECTED"
        }
        .to_string(),
    ]);
    println!("\n{table}");

    // Dump the populations for external plotting.
    let rows: Vec<Vec<String>> = model
        .golden_metrics
        .iter()
        .zip(&infected_metrics)
        .enumerate()
        .map(|(j, (g, t))| vec![j.to_string(), format!("{g:.1}"), format!("{t:.1}")])
        .collect();
    let path = "target/paper_figures/fig7_metric_populations.csv";
    match write_csv(
        path,
        &["die", "genuine_metric", "infected_ht2_metric"],
        &rows,
    ) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    if ks_g.is_plausible() && ks_t.is_plausible() {
        println!("\nboth measured populations pass the Gaussian plausibility check");
        println!("the paper adopts from Bowman et al.");
    } else {
        println!("\nfinding: the genuine population is mildly right-skewed (the");
        println!("metric is a sum of *absolute* deviations, i.e. folded noise), so");
        println!("strict Gaussianity is borderline — the paper's Eq. (5) is an");
        println!("approximation. It remains a good one: the analytic rate matches");
        println!("the empirical midpoint classification (see table_fn_rates).");
    }
}
