//! Fig. 2: the principle of the path measurement — the clock period is
//! decreased step by step and ciphertext bits fault one after another,
//! each onset step encoding one path delay.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::report::{ps, Table};
use htd_core::{Design, ProgrammedDevice};
use htd_timing::{FaultOnset, GlitchParams, GlitchSweep};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Fig. 2 — glitch staircase for one (P,K) pair",
        "51 steps of 35 ps; faulted-bit count grows as the period shrinks",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);

    let settles = dev
        .round10_settle_times(&PT, &KEY)
        .expect("simulation succeeds");
    let setup = dev.annotation().setup_ps();
    let max_required = settles.iter().flatten().fold(0.0f64, |a, &b| a.max(b)) + setup;
    let params =
        GlitchParams::paper_sweep(max_required, setup, dev.annotation().measurement_noise_ps());
    let sweep = GlitchSweep::new(params);
    let mut rng = StdRng::seed_from_u64(2015);
    let onsets = sweep.fault_onsets(&settles, &mut rng);

    // Staircase: cumulative number of faulted bits per step.
    let mut cumulative = vec![0usize; params.steps as usize];
    for o in &onsets {
        if let FaultOnset::Step(s) = o {
            for c in cumulative.iter_mut().skip(*s as usize) {
                *c += 1;
            }
        }
    }
    let mut table = Table::new(&["step", "period", "faulted bits"]);
    for (k, &n) in cumulative.iter().enumerate().step_by(5) {
        table.push_row(&[k.to_string(), ps(params.period_at(k as u16)), n.to_string()]);
    }
    println!("\n{table}");

    // Per-bit detail for a handful of bits (the α/β/γ of Fig. 2).
    let mut detail = Table::new(&["bit", "settle time", "fault onset step", "delay estimate"]);
    for bit in [0usize, 13, 47, 63, 104, 127] {
        let (settle, onset) = (settles[bit], onsets[bit]);
        detail.push_row(&[
            bit.to_string(),
            settle.map(ps).unwrap_or_else(|| "no toggle".into()),
            onset
                .step()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into()),
            onset
                .step()
                .map(|s| ps(params.delay_estimate_ps(s)))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{detail}");
    let faulted = onsets.iter().filter(|o| o.step().is_some()).count();
    println!("{faulted}/128 bits fault within the 51-step sweep; slow paths fault first.");
}
