//! Table (Section II-B): resource usage of the AES and of every trojan.
//!
//! Paper: AES covers 38.26 % of the FPGA slices; HT-comb 0.19 % and HT-seq
//! 0.36 % of the FPGA; HT 1/2/3 occupy 0.5 / 1.0 / 1.7 % of the AES.

use htd_bench::{banner, lab};
use htd_core::report::{pct, Table};
use htd_core::Design;
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Section II-B resource-usage table",
        "AES = 38.26% of FPGA; HT-comb 0.19%, HT-seq 0.36% of FPGA; HT1/2/3 = 0.5/1.0/1.7% of AES",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let aes_slices = golden.used_slices();
    let device_slices = lab.device.slice_count();

    println!(
        "\nAES-128: {} LUTs, {} FFs, {aes_slices} slices of {device_slices} = {} (paper: 38.26%)\n",
        golden.aes().netlist().stats().luts,
        golden.aes().netlist().stats().dffs,
        pct(golden.placement().utilization()),
    );

    let mut table = Table::new(&[
        "Trojan",
        "cells",
        "slices",
        "% of device",
        "paper (device)",
        "% of AES",
        "paper (AES)",
    ]);
    let rows: [(TrojanSpec, &str, &str); 5] = [
        (TrojanSpec::ht_comb(), "0.19%", "~0.5%"),
        (TrojanSpec::ht_seq(), "0.36%", "~0.9%"),
        (TrojanSpec::ht1(), "-", "0.5%"),
        (TrojanSpec::ht2(), "-", "1.0%"),
        (TrojanSpec::ht3(), "-", "1.7%"),
    ];
    for (spec, paper_dev, paper_aes) in rows {
        let infected = Design::infected(&lab, &spec).expect("insertion succeeds");
        let trojan = infected.trojan().expect("trojan present");
        table.push_row(&[
            spec.to_string(),
            trojan.cells.len().to_string(),
            trojan.distinct_slices().to_string(),
            pct(trojan.fraction_of_device(infected.placement())),
            paper_dev.to_string(),
            pct(trojan.fraction_of_design(aes_slices)),
            paper_aes.to_string(),
        ]);
    }
    println!("{table}");
    println!("note: HT-seq lands at ~20 slices absolute, matching the paper's");
    println!("0.36% x 4800 ≈ 17 slices; its *percentage* is larger here because");
    println!("the scaled device has 4.6x fewer slices and the virtual fabric");
    println!("has no dedicated carry chains for the 32-bit counter.");
}
