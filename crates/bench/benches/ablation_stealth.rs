//! Ablation (extension): a *stealth* load-only trojan — constant-LUT taps
//! with zero switching activity. The EM method (which sees switching)
//! should struggle; the delay method (which sees loading) should not.
//! This showcases why the paper presents the two methods as complementary.

use htd_bench::{banner, lab, KEY, PT};
use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::em_detect::direct_compare;
use htd_core::report::{ps, Table};
use htd_core::{Design, ProgrammedDevice};
use htd_trojan::TrojanSpec;

fn main() {
    banner(
        "Ablation — stealth (load-only) trojan vs both methods",
        "extension: the paper's methods are complementary — delay sees loads, EM sees switching",
    );
    let lab = lab();
    let golden = Design::golden(&lab).expect("golden design builds");
    let die = lab.fabricate_die(0);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);

    let specs = [TrojanSpec::ht_comb(), TrojanSpec::stealth()];
    let campaign = DelayCampaign::random(10, 10, 0x57EA);
    let detector = DelayDetector::new(
        characterize_golden(&gdev, campaign).expect("golden characterisation succeeds"),
    );

    let mut table = Table::new(&[
        "trojan",
        "delay: max |ΔD|",
        "delay verdict",
        "EM: deviation / floor",
        "EM verdict",
    ]);
    for (i, spec) in specs.iter().enumerate() {
        let infected = Design::infected(&lab, spec).expect("insertion succeeds");
        let tdev = ProgrammedDevice::new(&lab, &infected, &die);
        // Delay method.
        let evidence = detector
            .examine(&tdev, 77 + i as u64)
            .expect("examination succeeds");
        // EM method (same-die direct comparison).
        let g1 = gdev
            .acquire_em_trace(&PT, &KEY, 500 + i as u64)
            .expect("EM trace acquires");
        let g2 = gdev
            .acquire_em_trace(&PT, &KEY, 600 + i as u64)
            .expect("EM trace acquires");
        let t = tdev
            .acquire_em_trace(&PT, &KEY, 700 + i as u64)
            .expect("EM trace acquires");
        let cmp = direct_compare(&g1, &g2, &t);
        table.push_row(&[
            spec.to_string(),
            ps(evidence.max_diff_ps),
            if evidence.infected { "HT!" } else { "clean" }.to_string(),
            format!("{:.1}x", cmp.max_abs_diff / cmp.noise_floor.max(1e-9)),
            if cmp.infected { "HT!" } else { "not visible" }.to_string(),
        ]);
    }
    println!("\n{table}");
    println!("same-die EM still sees the stealth probe: its route-spur loading");
    println!("shifts the *timing* of the AES's own switching, and averaged traces");
    println!("resolve that. The stealth advantage shows where timing noise is");
    println!("already large — across dies:");

    // Inter-die comparison (Section V conditions): PV timing warp masks
    // the stealth probe's timing-only signature much more than the active
    // trigger's added switching.
    use htd_core::em_detect::{fn_rate_experiment, SideChannel};
    use htd_core::report::pct;
    let n = 48;
    let report = fn_rate_experiment(
        &lab,
        &[
            TrojanSpec::ht_comb(),
            TrojanSpec::stealth(),
            TrojanSpec::ht_seq(),
        ],
        SideChannel::Em,
        n,
        &PT,
        &KEY,
        1717,
    )
    .expect("experiment runs");
    let mut interdie = Table::new(&[
        "trojan",
        "switching?",
        "inter-die EM µ/σ",
        "inter-die EM FN (Eq.5)",
    ]);
    for row in &report.rows {
        let switching = match row.name.as_str() {
            "HT-seq" => "yes (counter ticks)",
            "HT-comb" => "almost none (dormant AND tree)",
            _ => "none by construction",
        };
        interdie.push_row(&[
            row.name.clone(),
            switching.to_string(),
            format!("{:.2}", row.mu / row.sigma),
            pct(row.analytic_fn_rate),
        ]);
    }
    println!("\n{interdie}");
    println!("finding: a dormant all-ones trigger is itself nearly switching-");
    println!("silent (its AND tree toggles only on near-trigger patterns), so its");
    println!("EM signature — like the stealth probe's — is dominated by passive");
    println!("loading, and the two are equally (in)visible. A trojan that truly");
    println!("switches (HT-seq's counter) stands out much further. The delay");
    println!("method flags all three regardless, because it senses the load");
    println!("directly — the complementarity behind the paper's two methods.");
}
