//! Delay-fingerprint audit (the paper's Section III workflow): a lab
//! receives a device back from an untrusted foundry and compares its
//! per-bit path delays against the golden model, pair by pair.
//!
//! ```sh
//! cargo run --release --example delay_audit
//! ```

use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::prelude::*;
use htd_core::report::{ps, Table};
use htd_core::ProgrammedDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lab = Lab::paper();
    let golden = Design::golden(&lab)?;
    let die = lab.fabricate_die(0);
    let golden_dev = ProgrammedDevice::new(&lab, &golden, &die);

    println!("characterising golden model: 25 (P,K) pairs x 10 glitch sweeps...");
    let campaign = DelayCampaign::random(25, 10, 0xA0D1_7017);
    let detector = DelayDetector::new(characterize_golden(&golden_dev, campaign)?);
    println!(
        "sweep: start {} / step {} ps / {} steps\n",
        ps(detector.golden().params.start_period_ps),
        detector.golden().params.step_ps,
        detector.golden().params.steps,
    );

    // Audit a shipment of devices: clean re-fabrications and infected ones.
    let shipment: Vec<(&str, Design)> = vec![
        ("unit-A (clean)", golden.clone()),
        ("unit-B (clean)", golden.clone()),
        (
            "unit-C (HT-comb)",
            Design::infected(&lab, &TrojanSpec::ht_comb())?,
        ),
        (
            "unit-D (HT-seq)",
            Design::infected(&lab, &TrojanSpec::ht_seq())?,
        ),
        ("unit-E (HT 3)", Design::infected(&lab, &TrojanSpec::ht3())?),
    ];

    let mut table = Table::new(&["unit", "max |ΔD|", "flagged bits", "verdict"]);
    for (i, (name, design)) in shipment.iter().enumerate() {
        let dut = ProgrammedDevice::new(&lab, design, &die);
        let evidence = detector.examine(&dut, 1000 + i as u64)?;
        table.push_row(&[
            name.to_string(),
            ps(evidence.max_diff_ps),
            evidence.flagged_bits.to_string(),
            if evidence.infected {
                "REJECT — trojan suspected"
            } else {
                "accept"
            }
            .to_string(),
        ]);
    }
    println!("{table}");
    println!("clean units show only measurement-noise residue; every infected");
    println!(
        "unit shifts many bits well past the {} ps threshold.",
        DelayDetector::DEFAULT_THRESHOLD_PS
    );
    Ok(())
}
