//! Incoming-inspection audit across distinct dies (the paper's Section V
//! scenario): genuine and suspect devices are *different chips*, so the
//! detector must overcome inter-die process variations using the golden
//! population statistics and the sum-of-local-maxima metric.
//!
//! ```sh
//! cargo run --release --example fab_audit
//! ```

use htd_core::em_detect::{characterize_em_golden, EmDetector, SideChannel};
use htd_core::prelude::*;
use htd_core::report::Table;
use htd_core::ProgrammedDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lab = Lab::paper();
    let golden = Design::golden(&lab)?;
    let pt = [0x5Au8; 16];
    let key = [0xC3u8; 16];

    // Characterise the golden population on 8 reference boards (the
    // paper's batch) and calibrate for a 5 % false-positive budget.
    println!("characterising golden EM population over 8 reference dies...");
    let reference_dies = lab.fabricate_batch(8);
    let model = characterize_em_golden(
        &lab,
        &golden,
        &reference_dies,
        SideChannel::Em,
        &pt,
        &key,
        1,
    )?;
    println!(
        "golden metric: mean {:.0}, sigma {:.0}",
        model.gaussian.mean(),
        model.gaussian.std()
    );
    let detector = EmDetector::with_false_positive_rate(model, 0.05)?;
    println!("decision threshold: {:.0}\n", detector.threshold());

    // A mixed shipment of unseen dies.
    let designs: Vec<(&str, Design)> = vec![
        ("clean", golden.clone()),
        ("HT 1 (0.5%)", Design::infected(&lab, &TrojanSpec::ht1())?),
        ("HT 2 (1.0%)", Design::infected(&lab, &TrojanSpec::ht2())?),
        ("HT 3 (1.7%)", Design::infected(&lab, &TrojanSpec::ht3())?),
    ];
    let mut table = Table::new(&["die", "payload", "metric", "verdict", "ground truth"]);
    let mut correct = 0usize;
    let mut total = 0usize;
    for die_seed in 100..106u64 {
        let die = lab.fabricate_die(die_seed);
        for (label, design) in &designs {
            let dev = ProgrammedDevice::new(&lab, design, &die);
            let trace = dev.acquire_em_trace(&pt, &key, die_seed * 17 + total as u64)?;
            let metric = detector.metric(&trace);
            let verdict = detector.is_infected(&trace);
            let truth = design.trojan().is_some();
            total += 1;
            if verdict == truth {
                correct += 1;
            }
            table.push_row(&[
                format!("#{die_seed}"),
                label.to_string(),
                format!("{metric:.0}"),
                if verdict { "REJECT" } else { "accept" }.to_string(),
                if truth { "infected" } else { "clean" }.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "{correct}/{total} classifications correct; residual errors concentrate on\n\
         the smallest trojan, exactly as the paper's 26% FN rate predicts."
    );
    Ok(())
}
