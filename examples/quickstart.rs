//! Quickstart: build a golden and an infected AES-128, program them onto
//! the same virtual FPGA, and detect the trojan with both of the paper's
//! methods in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::em_detect::direct_compare;
use htd_core::prelude::*;
use htd_core::ProgrammedDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The virtual laboratory: scaled Virtex-5, 65 nm variations, EM
    //    bench at 5 GS/s (paper Appendix A/B).
    let lab = Lab::paper();

    // 2. Designs: the golden AES-128 and an infected copy carrying the
    //    paper's combinational trojan (32 SubBytes taps, DoS payload),
    //    inserted into unused slices with the original placement intact.
    let golden = Design::golden(&lab)?;
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb())?;
    println!(
        "golden AES: {} | trojan: {} cells in {} slices ({:.2}% of the AES)",
        golden.aes().netlist().stats(),
        infected.trojan().unwrap().cells.len(),
        infected.trojan().unwrap().distinct_slices(),
        infected
            .trojan()
            .unwrap()
            .fraction_of_design(golden.used_slices())
            * 100.0,
    );

    // 3. Program both bitstreams into the same virtual FPGA.
    let die = lab.fabricate_die(0);
    let golden_dev = ProgrammedDevice::new(&lab, &golden, &die);
    let suspect_dev = ProgrammedDevice::new(&lab, &infected, &die);

    // Sanity: the dormant trojan does not change the cipher.
    let pt = [0x42u8; 16];
    let key = [0x0Fu8; 16];
    assert_eq!(
        golden_dev.encrypt(&pt, &key)?,
        suspect_dev.encrypt(&pt, &key)?
    );
    println!("dormant trojan preserves AES function ✓");

    // 4. Delay analysis (Section III): characterise the golden model with
    //    clock-glitch sweeps, then compare the suspect.
    let campaign = DelayCampaign::random(10, 10, 0x5EED);
    let detector = DelayDetector::new(characterize_golden(&golden_dev, campaign)?);
    let evidence = detector.examine(&suspect_dev, 1)?;
    println!(
        "delay analysis: {} bits shifted by more than {} ps (max {:.0} ps) → {}",
        evidence.flagged_bits,
        evidence.threshold_ps,
        evidence.max_diff_ps,
        if evidence.infected {
            "HT DETECTED"
        } else {
            "clean"
        },
    );

    // 5. EM analysis (Section IV): two genuine averaged traces bound the
    //    setup noise; the suspect trace deviates far above it.
    let g1 = golden_dev.acquire_em_trace(&pt, &key, 100)?;
    let g2 = golden_dev.acquire_em_trace(&pt, &key, 200)?;
    let suspect_trace = suspect_dev.acquire_em_trace(&pt, &key, 300)?;
    let cmp = direct_compare(&g1, &g2, &suspect_trace);
    println!(
        "EM analysis: deviation {:.0} vs noise floor {:.0} (sample {}) → {}",
        cmp.max_abs_diff,
        cmp.noise_floor,
        cmp.argmax,
        if cmp.infected { "HT DETECTED" } else { "clean" },
    );

    assert!(evidence.infected && cmp.infected);
    println!("\nboth of the paper's methods catch the dormant trojan.");
    Ok(())
}
