//! A tour of the trojan bestiary: build every paper trojan (plus some
//! custom variants), inspect their structure, area and parasitic
//! signatures, and deliberately provoke one payload in simulation.
//!
//! ```sh
//! cargo run --release --example trojan_zoo
//! ```

use htd_core::prelude::*;
use htd_core::report::{pct, ps, Table};
use htd_core::ProgrammedDevice;
use htd_trojan::{Payload, PlacementStrategy, Trigger};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lab = Lab::paper();
    let golden = Design::golden(&lab)?;
    let aes_slices = golden.used_slices();
    let die = lab.fabricate_die(0);

    let zoo = vec![
        TrojanSpec::ht_comb(),
        TrojanSpec::ht_seq(),
        TrojanSpec::ht1(),
        TrojanSpec::ht2(),
        TrojanSpec::ht3(),
        // A custom miniature: 8 taps — below the paper's smallest.
        TrojanSpec {
            name: "HT-nano".into(),
            trigger: Trigger::CombinationalAllOnes { taps: 8 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        },
        // A short counter for the live-payload demo below.
        TrojanSpec {
            name: "HT-ticking".into(),
            trigger: Trigger::SequentialCounter {
                width: 8,
                target: 4,
            },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        },
        // A stealth load-only probe (no switching at all).
        TrojanSpec::stealth(),
        // A key-exfiltration payload (the ref. [11] attack class).
        TrojanSpec {
            name: "HT-exfil".into(),
            trigger: Trigger::SequentialCounter {
                width: 8,
                target: 3,
            },
            payload: Payload::LeakKey,
            placement: PlacementStrategy::NearTaps,
        },
    ];

    let mut table = Table::new(&[
        "trojan",
        "cells",
        "slices",
        "% of AES",
        "taps",
        "max delay shift on SubBytes nets",
    ]);
    for spec in &zoo {
        let infected = Design::infected(&lab, spec)?;
        let trojan = infected.trojan().unwrap();
        let dev = ProgrammedDevice::new(&lab, &infected, &die);
        let max_shift = infected
            .aes()
            .subbytes_inputs()
            .iter()
            .map(|&n| dev.annotation().extra_net_delay_ps(n))
            .fold(0.0f64, f64::max);
        table.push_row(&[
            spec.to_string(),
            trojan.cells.len().to_string(),
            trojan.distinct_slices().to_string(),
            pct(trojan.fraction_of_design(aes_slices)),
            trojan.tapped_nets.len().to_string(),
            ps(max_shift),
        ]);
    }
    println!("{table}");

    // Provoke the ticking trojan: it fires after its 4th encryption.
    println!("arming HT-ticking (counter target = 4 encryptions):");
    let ticking_spec = zoo
        .iter()
        .find(|s| s.name == "HT-ticking")
        .expect("ticking spec in the zoo");
    let ticking = Design::infected(&lab, ticking_spec)?;
    let trojan = ticking.trojan().unwrap();
    let mut sim = htd_aes::structural::AesSim::new(ticking.aes())?;
    for n in 1..=6 {
        sim.encrypt(&[n as u8; 16], &[0x77u8; 16]);
        let fired = sim.simulator().get(trojan.payload_net);
        println!(
            "  encryption #{n}: payload {}",
            if fired {
                "FIRED — denial of service!"
            } else {
                "dormant"
            }
        );
    }
    // Provoke the key-exfiltration trojan: after its 3rd encryption it
    // arms and starts serialising the round-key register, one bit per
    // clock, on its covert channel.
    println!("\narming HT-exfil (leaks the round key after 3 encryptions):");
    let exfil_spec = zoo
        .iter()
        .find(|s| s.name == "HT-exfil")
        .expect("exfil spec in the zoo");
    let exfil = Design::infected(&lab, exfil_spec)?;
    let trojan = exfil.trojan().unwrap();
    let mut sim = htd_aes::structural::AesSim::new(exfil.aes())?;
    let key = [0xA5u8; 16];
    for _ in 0..3 {
        sim.encrypt(&[0x11u8; 16], &key);
    }
    let mut bits = String::new();
    for _ in 0..32 {
        sim.step_round();
        bits.push(if sim.simulator().get(trojan.payload_net) {
            '1'
        } else {
            '0'
        });
    }
    println!("  first 32 leaked key-register bits: {bits}");

    println!("\nevery paper trojan in the zoo stays dormant for its entire life —");
    println!("which is precisely why side-channel detection is needed.");
    Ok(())
}
