//! A tour of the EDA substrate itself: elaborate the AES-128 target,
//! analyse its timing, optimize it, serialize it to the `htdnet` text
//! format, parse it back, and prove the whole flow preserved the cipher —
//! the tooling a golden-model owner uses to archive and exchange the
//! reference design (the paper's Section II-A NCD workflow).
//!
//! ```sh
//! cargo run --release --example eda_flow
//! ```

use htd_aes::soft::Aes128;
use htd_aes::AesNetlist;
use htd_core::prelude::*;
use htd_core::ProgrammedDevice;
use htd_fabric::Placement;
use htd_netlist::Netlist;
use htd_timing::Sta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Elaborate.
    let aes = AesNetlist::generate()?;
    let stats = aes.netlist().stats();
    println!("elaborated AES-128: {stats}");

    // 2. Place onto the device and run static timing.
    let lab = Lab::paper();
    let placement = Placement::place(aes.netlist(), &lab.device)?;
    println!(
        "placed: {} slices used of {} ({:.1}%)",
        placement.used_slices(),
        lab.device.slice_count(),
        placement.utilization() * 100.0
    );
    let golden = Design::golden(&lab)?;
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let sta = Sta::analyze(golden.aes().netlist(), dev.annotation())?;
    let min_period = sta.min_period_ps(
        golden.aes().netlist(),
        golden.aes().state_d(),
        dev.annotation(),
    );
    println!(
        "static timing: min clock period {:.2} ns (fmax ≈ {:.1} MHz), hold slack {:.0} ps",
        min_period / 1_000.0,
        1e6 / min_period,
        sta.hold_slack_ps(golden.aes().state_d(), dev.annotation(), 60.0),
    );

    // 3. Optimize (constant folding, DCE, buffer sweep, CSE to fixpoint).
    let opt = aes.netlist().optimize()?;
    println!(
        "optimize: {} → {} LUTs ({} removed; the generator emits tight logic)",
        stats.luts,
        opt.netlist.stats().luts,
        stats.luts - opt.netlist.stats().luts
    );

    // 4. Serialize to the htdnet text format and parse it back.
    let text = opt.netlist.to_text();
    println!(
        "serialized: {} lines / {} KiB of htdnet text",
        text.lines().count(),
        text.len() / 1024
    );
    let parsed = Netlist::from_text(&text)?;
    assert_eq!(parsed.to_text(), text, "canonical round-trip");
    println!("parsed back: canonical round-trip ✓");

    // 5. Prove the flow end to end: encrypt through the parsed, optimized
    //    netlist and compare with the behavioural reference.
    let pt = [0xC0u8; 16];
    let key = [0xDEu8; 16];
    let want = Aes128::new(&key).encrypt_block(&pt);
    let mut sim = parsed.simulator()?;
    let map = |nets: &[htd_netlist::NetId]| -> Vec<htd_netlist::NetId> {
        nets.iter()
            .map(|&n| opt.net(n).expect("interface nets survive"))
            .collect()
    };
    sim.set_bus_bytes(&map(aes.plaintext()), &pt);
    sim.set_bus_bytes(&map(aes.key()), &key);
    sim.set(opt.net(aes.load()).expect("load survives"), true);
    sim.settle();
    sim.clock();
    sim.set(opt.net(aes.load()).expect("load survives"), false);
    sim.settle();
    for _ in 0..10 {
        sim.clock();
    }
    let got: [u8; 16] = sim
        .get_bus_bytes(&map(aes.ciphertext()))
        .try_into()
        .expect("128 bits");
    assert_eq!(got, want);
    println!("elaborate → place → time → optimize → serialize → parse → encrypt ✓");
    Ok(())
}
