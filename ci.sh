#!/usr/bin/env sh
# Tier-1 gate for the workspace, runnable locally and in CI:
#   1. release build of every target,
#   2. the full test suite,
#   3. clippy with warnings denied,
#   4. rustfmt check,
#   5. rustdoc with warnings denied.
# The build is fully offline: the three external dependencies (rand,
# proptest, criterion) are vendored API shims under vendor/.
set -eu

echo "==> cargo build --release"
cargo build --release --all-targets

echo "==> cargo test"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> ci.sh: all green"
