#!/usr/bin/env sh
# Tier-1 gate for the workspace, runnable locally and in CI:
#   1. release build of every target,
#   2. the full test suite,
#   3. every runnable example,
#   4. an `htd` CLI smoke run (characterize -> score -> report -> diff),
#   5. clippy with warnings denied,
#   6. rustfmt check,
#   7. rustdoc with warnings denied.
# The build is fully offline: the three external dependencies (rand,
# proptest, criterion) are vendored API shims under vendor/.
set -eu

echo "==> cargo build --release"
cargo build --release --all-targets

echo "==> cargo test"
cargo test -q

for ex in quickstart delay_audit fab_audit trojan_zoo eda_flow; do
    echo "==> cargo run --release --example $ex"
    cargo run --release --example "$ex"
done

echo "==> htd CLI smoke"
HTD_SMOKE_DIR="${TMPDIR:-/tmp}/htd-ci-smoke-$$"
# Clean the scratch directory however the script exits — a failing smoke
# step used to leak it (the rm -rf only ran on the success path).
trap 'rm -rf "$HTD_SMOKE_DIR"' EXIT
mkdir -p "$HTD_SMOKE_DIR"
HTD=target/release/htd
"$HTD" characterize --out "$HTD_SMOKE_DIR/golden.htd" \
    --dies 6 --pairs 2 --reps 2 --seed 42 --channels em,delay
"$HTD" score --golden "$HTD_SMOKE_DIR/golden.htd" --trojans ht2 \
    --report "$HTD_SMOKE_DIR/report.htd"
"$HTD" report "$HTD_SMOKE_DIR/report.htd" --csv >/dev/null
"$HTD" diff "$HTD_SMOKE_DIR/report.htd" "$HTD_SMOKE_DIR/report.htd"

echo "==> htd fault-injection smoke"
# The same golden artifact scored under the committed fault plan must
# reproduce the committed degraded report, byte for byte (`htd diff`
# exits non-zero otherwise).
"$HTD" score --golden "$HTD_SMOKE_DIR/golden.htd" --trojans ht2 \
    --faults tests/fixtures/faultplan.htd --max-retries 2 --allow-degraded \
    --report "$HTD_SMOKE_DIR/degraded.htd"
"$HTD" diff "$HTD_SMOKE_DIR/degraded.htd" tests/fixtures/degraded_report.htd

echo "==> htd metrics smoke (BENCH_pipeline.json, TRACE_pipeline.json)"
# The paper-headline campaign with --metrics and --trace. The manifest's
# counter section is deterministic (worker-invariant), so it is diffed
# against the committed fixture; timings are observational and never
# compared. `report --metrics` parses both files strictly, so any schema
# drift in the writer fails here before the diff even runs. The trace
# export stays in the workspace as a CI artifact (open it in
# chrome://tracing); its presence gates that tracing still exports.
"$HTD" characterize --out "$HTD_SMOKE_DIR/headline.htd" \
    --dies 8 --pairs 2 --reps 2 --seed 2015 --channels em,delay
"$HTD" score --golden "$HTD_SMOKE_DIR/headline.htd" --trojans sweep \
    --metrics BENCH_pipeline.json --trace TRACE_pipeline.json >/dev/null
test -s TRACE_pipeline.json
"$HTD" report --metrics BENCH_pipeline.json --counters \
    >"$HTD_SMOKE_DIR/bench.counters"
"$HTD" report --metrics tests/fixtures/run_manifest.json --counters \
    >"$HTD_SMOKE_DIR/pinned.counters"
diff "$HTD_SMOKE_DIR/bench.counters" "$HTD_SMOKE_DIR/pinned.counters"
# The structural gate over the full manifest: counters, plan digest and
# command must match the committed baseline exactly (exit 4 otherwise);
# timings pass ungated — they are machine noise in CI.
"$HTD" bench diff tests/fixtures/bench_baseline_pipeline.json BENCH_pipeline.json

echo "==> htd zoo smoke"
# A tiny trigger-size x channel sweep; the heat-map CSV is deterministic
# (worker-invariant), so it is diffed against the committed fixture.
"$HTD" zoo --sizes 4,8 --kinds comb,fsm --dies 3 --pairs 2 --reps 2 \
    --seed 42 --channels em,delay --csv "$HTD_SMOKE_DIR/zoo.csv" >/dev/null
diff "$HTD_SMOKE_DIR/zoo.csv" tests/fixtures/zoo_smoke.csv

echo "==> htd scoring-modes smoke (held-out FN rate)"
# Learned mode: train a classifier on the zoo grid with the whole
# counter-trigger family held out, then score the paper's sequential
# counter trojan (ht-seq, unseen family) through the model. The learned
# row's FN rate is deterministic, so the CSV is diffed against the
# committed fixture.
"$HTD" train --out "$HTD_SMOKE_DIR/model.htd" --sizes 8,16 --kinds comb,ctr,fsm \
    --holdout ctr --dies 6 --pairs 2 --reps 2 --seed 42 --iterations 50
"$HTD" score --golden "$HTD_SMOKE_DIR/golden.htd" --model "$HTD_SMOKE_DIR/model.htd" \
    --trojans ht-seq --report "$HTD_SMOKE_DIR/learned.htd"
"$HTD" report "$HTD_SMOKE_DIR/learned.htd" --csv >"$HTD_SMOKE_DIR/learned.csv"
diff "$HTD_SMOKE_DIR/learned.csv" tests/fixtures/learned_smoke.csv
# Reference-free mode: characterize without a golden reference and score
# through the same offline path the serve tests pin byte-for-byte.
"$HTD" characterize --out "$HTD_SMOKE_DIR/reffree.htd" --mode reference-free \
    --dies 4 --pairs 2 --reps 2 --seed 42 --channels em,delay
"$HTD" score --golden "$HTD_SMOKE_DIR/reffree.htd" --trojans ht2 \
    --report "$HTD_SMOKE_DIR/reffree-report.htd"
"$HTD" report "$HTD_SMOKE_DIR/reffree-report.htd" --csv >/dev/null

echo "==> htd serve smoke (BENCH_serve.json)"
# A real scoring server on an ephemeral port. Two gates: the response
# `htd bench --dump` captures must be byte-identical to the pinned
# offline report (served == offline, the subsystem's core claim), and a
# short load run must leave BENCH_serve.json as the CI throughput
# artifact. The trap kill is a fallback for mid-smoke failures; the
# success path shuts the server down over the protocol and waits.
"$HTD" characterize --out "$HTD_SMOKE_DIR/serve-golden.htd" \
    --dies 3 --pairs 2 --reps 2 --seed 42 --channels em,delay
"$HTD" serve --addr 127.0.0.1:0 >"$HTD_SMOKE_DIR/serve.log" 2>&1 &
HTD_SERVE_PID=$!
trap 'kill "$HTD_SERVE_PID" 2>/dev/null; rm -rf "$HTD_SMOKE_DIR"' EXIT
HTD_SERVE_ADDR=
for _ in $(seq 1 100); do
    HTD_SERVE_ADDR=$(sed -n 's/^serving on //p' "$HTD_SMOKE_DIR/serve.log")
    [ -n "$HTD_SERVE_ADDR" ] && break
    sleep 0.1
done
[ -n "$HTD_SERVE_ADDR" ] || { cat "$HTD_SMOKE_DIR/serve.log"; exit 1; }
"$HTD" bench --serve --addr "$HTD_SERVE_ADDR" \
    --golden "$HTD_SMOKE_DIR/serve-golden.htd" --suspects ht1 \
    --requests 1 --clients 1 --dump "$HTD_SMOKE_DIR/served.htd" >/dev/null
diff "$HTD_SMOKE_DIR/served.htd" tests/fixtures/serve_response.htd
"$HTD" bench --serve --addr "$HTD_SERVE_ADDR" \
    --golden "$HTD_SMOKE_DIR/serve-golden.htd" --suspects ht1,ht2,ht-seq \
    --requests 300 --clients 4 --json BENCH_serve.json --shutdown
wait "$HTD_SERVE_PID"
test -s BENCH_serve.json
# Same structural gate for the serve load: the request mix and outcome
# counts (300 ok, 0 errors) must match the committed baseline; the
# throughput and latency fields only gate when a --gate band is given.
"$HTD" bench diff tests/fixtures/bench_baseline_serve.json BENCH_serve.json

echo "==> criterion quick benches (BENCH_acquire.json)"
# The per-stage acquisition benches in quick mode: 3 samples each, with
# the shim's JSON emission producing a second BENCH trajectory next to
# BENCH_pipeline.json. Numbers are observational (never diffed); the run
# itself gates that every bench still executes.
HTD_BENCH_SAMPLES=3 HTD_BENCH_JSON="$PWD/BENCH_acquire.json" \
    cargo bench -p htd-bench --bench acquire_kernels
test -s BENCH_acquire.json

echo "==> cargo clippy -- -D warnings"
# The crates this tier touches are linted explicitly first (fast,
# focused diagnostics), then the whole workspace with every target.
cargo clippy -p htd-netlist -p htd-trojan -p htd-serve -p htd-obs \
    -p htd-core -p htd-stats -p htd-store -p htd-cli -- -D warnings
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> ci.sh: all green"
