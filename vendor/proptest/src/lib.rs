//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim. It keeps the shape of real proptest — the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, `any::<T>()`, range and tuple
//! strategies, `proptest::collection::vec`, a character-class string
//! strategy, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros — but drops shrinking: a failing case reports its inputs and
//! case number instead of a minimised counterexample. Case generation is
//! fully deterministic (seeded from the test's module path and name), so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from a test identifier and case index, so every
    /// test gets its own reproducible stream.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case number.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is < 2^-64 per draw, irrelevant
        // for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable with the `PROPTEST_CASES` env var.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use super::*;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo) as u64 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__htd_l, __htd_r) => {
                $crate::prop_assert!(
                    *__htd_l == *__htd_r,
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __htd_l,
                    __htd_r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__htd_l, __htd_r) => {
                $crate::prop_assert!(
                    *__htd_l == *__htd_r,
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __htd_l,
                    __htd_r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__htd_l, __htd_r) => {
                $crate::prop_assert!(
                    *__htd_l != *__htd_r,
                    "assertion failed: `left != right`\n  both: {:?}",
                    __htd_l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__htd_l, __htd_r) => {
                $crate::prop_assert!(
                    *__htd_l != *__htd_r,
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    __htd_l,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Skips the current case when its generated inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the case count
/// for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __htd_config: $crate::ProptestConfig = $config;
            let __htd_cases: u32 = __htd_config.cases.max(1);
            let __htd_test = concat!(module_path!(), "::", stringify!($name));
            for __htd_case in 0..__htd_cases {
                let mut __htd_rng = $crate::TestRng::deterministic(__htd_test, __htd_case as u64);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __htd_rng);)+
                let __htd_inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str("  ");
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}\n", &$arg));
                    )+
                    s
                };
                let __htd_outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __htd_outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{} failed at case {}/{}:\n{}\ninputs:\n{}",
                            __htd_test,
                            __htd_case + 1,
                            __htd_cases,
                            msg,
                            __htd_inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::sample(&(5u16..=7), &mut rng);
            assert!((5..=7).contains(&y));
            let f = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size_ranges() {
        let mut rng = crate::TestRng::deterministic("vec", 1);
        for _ in 0..200 {
            let v = Strategy::sample(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let w = Strategy::sample(&crate::collection::vec(any::<bool>(), 4), &mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn string_pattern_generates_class_members() {
        let mut rng = crate::TestRng::deterministic("pat", 2);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        // The exact class used by the netlist serdes property tests.
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-zA-Z0-9 _\\\\\"\\[\\]]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()
                || c == ' '
                || c == '_'
                || c == '\\'
                || c == '"'
                || c == '['
                || c == ']'));
        }
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let mut rng = crate::TestRng::deterministic("flat", 3);
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(n), n..=n));
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| x == v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: tuples, maps, assume, assertions.
        #[test]
        fn macro_roundtrip(a in 0u64..100, b in 0u64..100, pair in (0u8..4, 0u8..4).prop_map(|(x, y)| (x, y))) {
            prop_assume!(a + b < 200); // never rejects; exercises the path
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
            if a != b {
                prop_assert_ne!(a, b, "a = {}", a);
            }
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }
}
