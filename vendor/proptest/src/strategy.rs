//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace uses: ranges, tuples, `Just`, `prop_map`, `prop_flat_map`,
//! and a character-class string strategy for `&str` patterns.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// draws a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value — the proptest
    /// idiom for dependent generation.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                (lo + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(hi >= lo, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.end > self.start, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String patterns: a `&str` is a strategy for `String`.
///
/// Supports the regex subset the workspace uses — a sequence of atoms,
/// each a literal character or a character class `[...]` (with ranges and
/// `\`-escapes), optionally repeated `{n}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_reps + rng.below((atom.max_reps - atom.min_reps) as u64 + 1) as u32;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min_reps: u32,
    max_reps: u32,
}

fn parse_pattern(pattern: &str) -> Result<Vec<PatternAtom>, String> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                loop {
                    let Some(c) = it.next() else {
                        return Err("unterminated character class".into());
                    };
                    match c {
                        ']' => break,
                        '\\' => {
                            let Some(esc) = it.next() else {
                                return Err("dangling escape".into());
                            };
                            set.push(esc);
                        }
                        lo => {
                            if it.peek() == Some(&'-') {
                                it.next();
                                let Some(hi) = it.next() else {
                                    return Err("unterminated range".into());
                                };
                                if hi == ']' {
                                    set.push(lo);
                                    set.push('-');
                                    break;
                                }
                                if (hi as u32) < (lo as u32) {
                                    return Err(format!("inverted range {lo}-{hi}"));
                                }
                                for cp in (lo as u32)..=(hi as u32) {
                                    set.extend(char::from_u32(cp));
                                }
                            } else {
                                set.push(lo);
                            }
                        }
                    }
                }
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                set
            }
            '\\' => {
                let Some(esc) = it.next() else {
                    return Err("dangling escape".into());
                };
                vec![esc]
            }
            lit => vec![lit],
        };
        // Optional repetition suffix.
        let (min_reps, max_reps) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            loop {
                let Some(c) = it.next() else {
                    return Err("unterminated repetition".into());
                };
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parse = |s: &str| s.trim().parse::<u32>().map_err(|e| e.to_string());
            match spec.split_once(',') {
                Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                None => {
                    let n = parse(&spec)?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if max_reps < min_reps {
            return Err(format!("inverted repetition {min_reps},{max_reps}"));
        }
        atoms.push(PatternAtom {
            chars,
            min_reps,
            max_reps,
        });
    }
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_pattern_is_itself() {
        let mut rng = TestRng::deterministic("lit", 0);
        assert_eq!(Strategy::sample(&"abc", &mut rng), "abc");
    }

    #[test]
    fn class_with_escapes_parses() {
        // The serdes test pattern: alnum, space, underscore, backslash,
        // quote, square brackets.
        let atoms = parse_pattern("[a-zA-Z0-9 _\\\\\"\\[\\]]{0,12}").unwrap();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].min_reps, 0);
        assert_eq!(atoms[0].max_reps, 12);
        for needed in ['a', 'z', 'A', 'Z', '0', '9', ' ', '_', '\\', '"', '[', ']'] {
            assert!(atoms[0].chars.contains(&needed), "missing {needed:?}");
        }
    }

    #[test]
    fn exact_repetition() {
        let mut rng = TestRng::deterministic("rep", 0);
        for _ in 0..50 {
            let s = Strategy::sample(&"[01]{8}", &mut rng);
            assert_eq!(s.len(), 8);
            assert!(s.bytes().all(|b| b == b'0' || b == b'1'));
        }
    }

    #[test]
    fn just_and_tuples_compose() {
        let mut rng = TestRng::deterministic("tup", 0);
        let strat = (Just(7usize), 0u8..3).prop_map(|(a, b)| a + b as usize);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((7..10).contains(&v));
        }
    }
}
