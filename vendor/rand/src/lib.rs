//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen::<f64>()`, `fill`), [`rngs::StdRng`] and [`rngs::mock::StepRng`].
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the upstream crate. The stream
//! produced by [`rngs::StdRng`] is a xoshiro256++ generator rather than
//! upstream's ChaCha12, so raw draws differ from upstream `rand`; every
//! consumer in this workspace asserts reproducibility and statistical
//! properties, never golden values, so the substitution is observationally
//! equivalent for the test suite. Determinism guarantee: a given seed
//! always yields the same stream, on every platform.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw integer and byte output.
///
/// Mirrors `rand_core::RngCore` minus the fallible `try_fill_bytes`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with splitmix64
    /// (the same expansion upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types sampleable from the uniform "standard" distribution.
///
/// Stands in for `Distribution<T> for Standard`; only the types the
/// workspace draws with `rng.gen()` are implemented.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Types fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience extension methods over any [`RngCore`].
///
/// Implemented blanket-style (including for unsized `R`) so functions
/// generic over `R: RngCore + ?Sized` can call `rng.gen::<f64>()`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Fills `dest` (e.g. a `[u8; 16]`) with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and — unlike upstream's ChaCha12-backed
    /// `StdRng` — implementable in a few lines with no dependencies. All
    /// workspace code treats `StdRng` streams as opaque (reproducible, not
    /// golden), so the algorithm swap is safe.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xD1B5_4A32_D192_ED03,
                    0xAEF1_7502_B3DE_E2A1,
                    0x8664_563E_98F5_E124,
                ];
            }
            StdRng { s }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// A deterministic counter "generator": yields `initial`,
        /// `initial + increment`, … Mirrors `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a `StepRng` starting at `initial`, stepping by
            /// `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(9);
        // With 256 draws per byte the chance any byte stays zero in all
        // of 64 trials is negligible.
        let mut ever_nonzero = [false; 16];
        for _ in 0..64 {
            let mut block = [0u8; 16];
            rng.fill(&mut block);
            for (seen, b) in ever_nonzero.iter_mut().zip(block) {
                *seen |= b != 0;
            }
        }
        assert!(ever_nonzero.iter().all(|&b| b));
    }

    #[test]
    fn fill_bytes_handles_non_multiple_of_eight() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(0, 0);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 0);
        let mut r = StepRng::new(5, 3);
        assert_eq!(r.next_u64(), 5);
        assert_eq!(r.next_u64(), 8);
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        // `&mut dyn RngCore` must satisfy `R: RngCore + ?Sized` call sites.
        fn draw(rng: &mut dyn RngCore) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
