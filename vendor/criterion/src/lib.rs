//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses: `Criterion::default().sample_size(n)`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim. It runs each benchmark for a fixed number of timed samples
//! and prints mean / fastest wall-clock per iteration — enough to compare
//! runs by eye, with none of criterion's statistics or HTML reports.
//!
//! Two environment variables hook the shim into CI trajectories:
//!
//! - `HTD_BENCH_SAMPLES=n` overrides every benchmark's sample count
//!   (including explicit `sample_size(..)` calls) — CI's quick mode.
//! - `HTD_BENCH_JSON=path` makes `criterion_main!` write all collected
//!   results as a JSON document at process exit.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished benchmark, as accumulated in the process-wide registry.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (the `bench_function` name).
    pub id: String,
    /// Mean wall-clock per iteration, ns.
    pub mean_ns: u128,
    /// Fastest sample, ns.
    pub fastest_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

/// Every result reported in this process, in execution order.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    pinned_by_env: bool,
}

impl Criterion {
    /// A driver with the default sample count (10 timed samples), unless
    /// `HTD_BENCH_SAMPLES` pins a count for the whole process.
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        match std::env::var("HTD_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(n) => Criterion {
                sample_size: n.max(1),
                pinned_by_env: true,
            },
            None => Criterion {
                sample_size: 10,
                pinned_by_env: false,
            },
        }
    }

    /// Sets how many timed samples each benchmark collects. Ignored when
    /// `HTD_BENCH_SAMPLES` is set: the environment wins so CI can run
    /// every bench in quick mode without editing the bench sources.
    pub fn sample_size(mut self, n: usize) -> Self {
        if !self.pinned_by_env {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Collects `sample_size` timed runs of `routine` (after one warm-up
    /// run) and records the per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let fastest = self.samples.iter().min().expect("non-empty");
        println!(
            "{id:<40} mean {:>12?}   fastest {:>12?}   ({} samples)",
            mean,
            fastest,
            self.samples.len()
        );
        lock_results().push(BenchResult {
            id: id.to_string(),
            mean_ns: mean.as_nanos(),
            fastest_ns: fastest.as_nanos(),
            samples: self.samples.len(),
        });
    }
}

fn lock_results() -> std::sync::MutexGuard<'static, Vec<BenchResult>> {
    RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Serialises `results` as the JSON document CI trajectories diff:
/// `{"benches": [{"id": ..., "mean_ns": ..., "fastest_ns": ...,
/// "samples": ...}, ...]}`. Ids contain only identifier-ish characters
/// in this workspace, but quotes/backslashes are escaped anyway.
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "    {{\"id\": \"{id}\", \"mean_ns\": {}, \"fastest_ns\": {}, \"samples\": {}}}{}\n",
            r.mean_ns,
            r.fastest_ns,
            r.samples,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes every collected result to `path` as JSON (see
/// [`results_to_json`]).
///
/// # Panics
///
/// Panics if the file cannot be written — a bench trajectory that
/// silently loses its output is worse than a failed run.
pub fn write_results_json(path: &str) {
    let json = results_to_json(&lock_results());
    std::fs::write(path, json)
        .unwrap_or_else(|e| panic!("criterion shim: cannot write {path}: {e}"));
}

/// Called by `criterion_main!` after all groups ran: honours
/// `HTD_BENCH_JSON` if set and non-empty, otherwise does nothing.
pub fn write_json_if_requested() {
    if let Ok(path) = std::env::var("HTD_BENCH_JSON") {
        if !path.is_empty() {
            write_results_json(&path);
        }
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// `config = Criterion::...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups, then writing the JSON results
/// file when `HTD_BENCH_JSON` requests one.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0usize;
        c.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        // 1 warm-up + 5 samples, possibly re-entered; at least 6 calls.
        assert!(ran >= 6);
    }

    #[test]
    fn results_land_in_the_registry() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("registry_probe", |b| b.iter(|| black_box(40 + 2)));
        let results = lock_results();
        let r = results
            .iter()
            .rev()
            .find(|r| r.id == "registry_probe")
            .expect("bench recorded");
        assert_eq!(r.samples, 2);
        assert!(r.mean_ns >= r.fastest_ns || r.mean_ns == 0);
    }

    #[test]
    fn json_document_is_well_formed() {
        let json = results_to_json(&[
            BenchResult {
                id: "a\"b".into(),
                mean_ns: 10,
                fastest_ns: 7,
                samples: 3,
            },
            BenchResult {
                id: "plain".into(),
                mean_ns: 20,
                fastest_ns: 20,
                samples: 1,
            },
        ]);
        assert!(json.starts_with("{\n  \"benches\": [\n"));
        assert!(json
            .contains("\"id\": \"a\\\"b\", \"mean_ns\": 10, \"fastest_ns\": 7, \"samples\": 3},"));
        assert!(json
            .contains("\"id\": \"plain\", \"mean_ns\": 20, \"fastest_ns\": 20, \"samples\": 1}\n"));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn empty_registry_serialises_to_an_empty_list() {
        assert_eq!(results_to_json(&[]), "{\n  \"benches\": [\n  ]\n}\n");
    }
}
