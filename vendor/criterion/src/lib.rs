//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses: `Criterion::default().sample_size(n)`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim. It runs each benchmark for a fixed number of timed samples
//! and prints mean / fastest wall-clock per iteration — enough to compare
//! runs by eye, with none of criterion's statistics or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// A driver with the default sample count (10 timed samples).
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion { sample_size: 10 }
    }

    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Collects `sample_size` timed runs of `routine` (after one warm-up
    /// run) and records the per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let fastest = self.samples.iter().min().expect("non-empty");
        println!(
            "{id:<40} mean {:>12?}   fastest {:>12?}   ({} samples)",
            mean,
            fastest,
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// `config = Criterion::...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0usize;
        c.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        // 1 warm-up + 5 samples, possibly re-entered; at least 6 calls.
        assert!(ran >= 6);
    }
}
