//! End-to-end fault-injection tests: the same [`FaultPlan`] against the
//! same [`CampaignPlan`] must yield a bit-identical degraded report at
//! any worker count, a checked-in fixture pins the exact bytes the
//! `htd` CLI smoke flow produces, and the strict/degraded policy split
//! behaves as documented (exhaustion errors vs quarantine-and-continue).

use std::path::PathBuf;

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Channel, ChannelSpec};
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{
    characterize_campaign_faulted, characterize_campaign_with, score_campaign_faulted,
    GoldenCharacterization, MultiChannelReport,
};
use htd_core::resilience::RetryPolicy;
use htd_core::{Engine, Error, Lab};
use htd_faults::{FaultPlan, FaultSite};
use htd_trojan::TrojanSpec;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// The campaign of the CI smoke flow: `htd characterize --dies 6
/// --pairs 2 --reps 2 --seed 42 --channels em,delay`.
fn plan() -> CampaignPlan {
    CampaignPlan::with_random_pairs(6, 2, 2, [0x42; 16], [0x0f; 16], 42)
}

fn specs() -> Vec<ChannelSpec> {
    vec![
        ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
        ChannelSpec::Delay,
    ]
}

/// The checked-in `tests/fixtures/faultplan.htd` value.
fn faultplan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        acquire_rate: 0.2,
        rep_rate: 0.1,
        calibrate_rate: 0.0,
        store_rate: 0.0,
    }
}

/// Characterizes and scores `ht2` under `faults` + `policy`, both
/// phases faulted, on `workers` workers.
fn faulted_campaign(
    workers: usize,
    faults: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<(GoldenCharacterization, MultiChannelReport), Error> {
    let engine = Engine::with_workers(workers);
    let lab = Lab::paper();
    let channels: Vec<Box<dyn Channel>> = specs().iter().map(ChannelSpec::build).collect();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let charac = characterize_campaign_faulted(&engine, &lab, &plan(), &refs, faults, policy)?;
    // A lost channel would leave `refs` out of lockstep with the states;
    // none of these tests expect that here.
    assert_eq!(charac.states.len(), refs.len(), "no channel lost");
    let campaign = score_campaign_faulted(
        &engine,
        &lab,
        &charac,
        &[TrojanSpec::ht2()],
        &refs,
        faults,
        policy,
    )?;
    Ok((charac, campaign.report))
}

#[test]
fn the_faultplan_fixture_is_the_pinned_plan() {
    let path = fixture_dir().join("faultplan.htd");
    let stored = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e})", path.display()));
    let parsed: FaultPlan = htd_store::from_text(&stored).expect("fixture parses");
    assert_eq!(parsed, faultplan());
}

#[test]
fn degraded_reports_are_bit_identical_across_worker_counts() {
    let faults = faultplan();
    let policy = RetryPolicy::degraded(2);
    let texts: Vec<String> = [1, 2, 8]
        .iter()
        .map(|&w| {
            let (_, report) = faulted_campaign(w, &faults, &policy).expect("campaign completes");
            htd_store::to_text(&report)
        })
        .collect();
    assert_eq!(texts[0], texts[1], "1 vs 2 workers");
    assert_eq!(texts[0], texts[2], "1 vs 8 workers");

    // The run must be *actually* degraded, not vacuously identical: the
    // health section exists and records fault activity.
    let (_, report) = faulted_campaign(1, &faults, &policy).unwrap();
    assert!(!report.health.is_empty(), "health section present");
    let activity: usize = report
        .health
        .iter()
        .map(|h| h.retried + h.dropped + h.reps_dropped)
        .sum();
    assert!(activity > 0, "the fault plan fired somewhere: {report:?}");
}

/// The CLI smoke flow, as a library call: a **pristine** golden artifact
/// (characterize runs fault-free) scored under the committed fault plan.
fn smoke_flow_report() -> MultiChannelReport {
    let engine = Engine::with_workers(2);
    let lab = Lab::paper();
    let channels: Vec<Box<dyn Channel>> = specs().iter().map(ChannelSpec::build).collect();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let charac = characterize_campaign_with(&engine, &lab, &plan(), &refs).expect("characterize");
    score_campaign_faulted(
        &engine,
        &lab,
        &charac,
        &[TrojanSpec::ht2()],
        &refs,
        &faultplan(),
        &RetryPolicy::degraded(2),
    )
    .expect("degraded scoring completes")
    .report
}

#[test]
fn a_faulted_campaign_matches_the_pinned_degraded_report() {
    let path = fixture_dir().join("degraded_report.htd");
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run the regenerate test below",
            path.display()
        )
    });
    assert_eq!(
        htd_store::to_text(&smoke_flow_report()),
        stored,
        "degraded report drifted from {}",
        path.display()
    );
}

/// Rewrites `tests/fixtures/degraded_report.htd` from the current
/// pipeline. Run only after a deliberate change to the measurement or
/// fault semantics:
///
/// ```sh
/// cargo test -p htd-store --test fault_injection -- --ignored regenerate
/// ```
#[test]
#[ignore = "regenerates the checked-in degraded report fixture"]
fn regenerate_degraded_report() {
    let path = fixture_dir().join("degraded_report.htd");
    std::fs::write(&path, htd_store::to_text(&smoke_flow_report())).unwrap();
    println!("wrote {}", path.display());
}

#[test]
fn strict_policies_surface_exhaustion_instead_of_degrading() {
    // At a 90% acquire fault rate, some die exhausts a zero-retry budget
    // with near certainty; strict policy must turn that into an error.
    let faults = FaultPlan {
        seed: 1,
        acquire_rate: 0.9,
        rep_rate: 0.0,
        calibrate_rate: 0.0,
        store_rate: 0.0,
    };
    let err = faulted_campaign(2, &faults, &RetryPolicy::strict()).unwrap_err();
    assert!(
        matches!(err, Error::AcquisitionExhausted { .. }),
        "unexpected error: {err}"
    );
}

#[test]
fn moderate_drop_rates_complete_with_per_channel_health() {
    // A campaign with ~20% injected acquisition drops and *no* retry
    // budget must still complete under allow_degraded, quarantining the
    // faulted dies. Deterministic seed search: find a plan that drops at
    // least one die yet leaves every channel two dies to stand on.
    let policy = RetryPolicy {
        max_retries: 0,
        allow_degraded: true,
    };
    let mut outcome = None;
    for seed in 0..1000 {
        let faults = FaultPlan {
            seed,
            acquire_rate: 0.2,
            rep_rate: 0.0,
            calibrate_rate: 0.0,
            store_rate: 0.0,
        };
        let Ok((charac, report)) = faulted_campaign(2, &faults, &policy) else {
            continue;
        };
        let dropped: usize = charac.states.iter().map(|s| s.health.dropped).sum();
        if dropped == 0 {
            continue;
        }
        outcome = Some((charac, report));
        break;
    }
    let (charac, report) = outcome.expect("some seed drops a die but completes");
    for state in &charac.states {
        assert!(state.kept.len() >= 2);
        assert_eq!(state.kept.len(), charac.plan.n_dies - state.health.dropped);
    }
    assert_eq!(report.health.len(), 2, "one health record per channel");
    assert!(report.health.iter().all(|h| !h.lost));
}

#[test]
fn an_exhausted_calibration_loses_the_channel_but_not_the_campaign() {
    // Deterministic seed search on the fault plan alone (no simulation):
    // EM (channel 0) must diverge on all three calibration attempts while
    // delay (channel 1) calibrates within budget.
    let max_retries = 2;
    let seed = (0..1000)
        .find(|&seed| {
            let fp = FaultPlan {
                seed,
                acquire_rate: 0.0,
                rep_rate: 0.0,
                calibrate_rate: 0.5,
                store_rate: 0.0,
            };
            let all_fire =
                |c: u64| (0..=max_retries as u64).all(|a| fp.fires(FaultSite::Calibrate, &[c, a]));
            all_fire(0) && !all_fire(1)
        })
        .expect("some seed loses exactly the EM calibration");
    let faults = FaultPlan {
        seed,
        acquire_rate: 0.0,
        rep_rate: 0.0,
        calibrate_rate: 0.5,
        store_rate: 0.0,
    };
    let engine = Engine::with_workers(2);
    let lab = Lab::paper();
    let channels: Vec<Box<dyn Channel>> = specs().iter().map(ChannelSpec::build).collect();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let charac = characterize_campaign_faulted(
        &engine,
        &lab,
        &plan(),
        &refs,
        &faults,
        &RetryPolicy::degraded(max_retries),
    )
    .expect("the delay channel carries the campaign");
    let names: Vec<&str> = charac.states.iter().map(|s| s.channel.as_str()).collect();
    assert_eq!(names, ["delay"]);
    assert_eq!(charac.lost.len(), 1);
    assert_eq!(charac.lost[0].channel, "EM");
    assert!(charac.lost[0].lost);
    assert_eq!(charac.lost[0].attempted, max_retries + 1);

    // The degraded characterization still stores and round-trips.
    let artifact =
        htd_store::GoldenArtifact::new(vec![ChannelSpec::Delay], charac).expect("storable");
    let text = htd_store::to_text(&artifact);
    let back: htd_store::GoldenArtifact = htd_store::from_text(&text).expect("round-trips");
    assert_eq!(back, artifact);

    // Under the strict policy the same plan is a hard error.
    let err = characterize_campaign_faulted(
        &engine,
        &lab,
        &plan(),
        &refs,
        &faults,
        &RetryPolicy {
            max_retries,
            allow_degraded: false,
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::CalibrationDiverged { .. }),
        "unexpected error: {err}"
    );
}
