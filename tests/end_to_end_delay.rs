//! End-to-end delay-based detection (paper Section III): golden model
//! characterisation, Eq. (4) comparison, detection of both paper trojans,
//! and no false positive on a clean re-measurement.

use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::prelude::*;
use htd_core::ProgrammedDevice;

fn detector(lab: &Lab, golden_dev: &ProgrammedDevice<'_>, pairs: usize) -> DelayDetector {
    let _ = lab;
    let campaign = DelayCampaign::random(pairs, 10, 0xC0FFEE);
    DelayDetector::new(characterize_golden(golden_dev, campaign).unwrap())
}

#[test]
fn clean_remeasurement_is_not_flagged() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let det = detector(&lab, &dev, 10);
    // Same die, same design, fresh measurement noise (the paper's
    // Clean1/Clean2 curves in Fig. 3).
    let evidence = det.examine(&dev, 1).unwrap();
    assert!(
        !evidence.infected,
        "clean device flagged: {} bits over {} ps (max {})",
        evidence.flagged_bits, evidence.threshold_ps, evidence.max_diff_ps
    );
    assert!(evidence.max_diff_ps < 70.0);
}

#[test]
fn combinational_trojan_is_detected() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let die = lab.fabricate_die(0);
    let golden_dev = ProgrammedDevice::new(&lab, &golden, &die);
    let det = detector(&lab, &golden_dev, 10);
    let dut = ProgrammedDevice::new(&lab, &infected, &die);
    let evidence = det.examine(&dut, 2).unwrap();
    assert!(evidence.infected);
    assert!(
        evidence.flagged_bits >= 4,
        "only {} bits flagged",
        evidence.flagged_bits
    );
    // Fig. 3 scale: shifts of hundreds of ps.
    assert!(
        evidence.max_diff_ps > 150.0 && evidence.max_diff_ps < 3_000.0,
        "max diff {}",
        evidence.max_diff_ps
    );
}

#[test]
fn sequential_trojan_is_detected_without_activation() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_seq()).unwrap();
    let die = lab.fabricate_die(0);
    let golden_dev = ProgrammedDevice::new(&lab, &golden, &die);
    let det = detector(&lab, &golden_dev, 10);
    let dut = ProgrammedDevice::new(&lab, &infected, &die);
    let evidence = det.examine(&dut, 3).unwrap();
    assert!(
        evidence.infected,
        "HT-seq missed (max {})",
        evidence.max_diff_ps
    );
}

#[test]
fn more_pairs_accumulate_more_evidence() {
    // Section III-B: "the more (P,K) pairs are studied, the more bits will
    // be sampled, the more evidence about HT presence is collected".
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let die = lab.fabricate_die(0);
    let golden_dev = ProgrammedDevice::new(&lab, &golden, &die);
    let det = detector(&lab, &golden_dev, 12);
    let dut = ProgrammedDevice::new(&lab, &infected, &die);
    let few = det.examine_pairs(&dut, 4, 2).unwrap();
    let many = det.examine_pairs(&dut, 4, 12).unwrap();
    assert!(many.flagged_bits >= few.flagged_bits);
    assert!(many.infected);
    // Asking for more pairs than the golden campaign characterised is an
    // error, not a silent truncation.
    assert!(matches!(
        det.examine_pairs(&dut, 4, 13),
        Err(Error::PairCountExceedsCampaign {
            requested: 13,
            available: 12,
        })
    ));
}
