//! End-to-end tests of `htd serve`: a real server on a real socket,
//! driven through the library client. The load-bearing claims: served
//! responses embed the byte-identical report the offline `htd score`
//! path writes — at 1, 2 and 8 workers, with the result cache disabled
//! so every request really scores — and every failure mode (malformed
//! frame, queue overflow, faulted acquisition) degrades exactly one
//! response while the server lives on.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use htd_obs::RunManifest;
use htd_serve::{Client, Request, Response};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htd-serve-{}-{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn htd(args: &[&str]) -> std::process::Output {
    let out = Command::new(env!("CARGO_BIN_EXE_htd"))
        .args(args)
        .output()
        .expect("htd spawns");
    assert!(
        out.status.success(),
        "htd {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

/// The small pinned campaign every serve test scores against (matching
/// the CI smoke in `ci.sh`).
fn characterize(dir: &Path) -> String {
    let golden = dir.join("golden.htd").display().to_string();
    htd(&[
        "characterize",
        "--out",
        &golden,
        "--dies",
        "3",
        "--pairs",
        "2",
        "--reps",
        "2",
        "--seed",
        "42",
        "--channels",
        "em,delay",
    ]);
    golden
}

/// A serve instance on an ephemeral port: spawns `htd serve <extra>`,
/// blocks until the startup line names the bound address.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_htd"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("htd serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before binding")
                .expect("readable stdout");
            if let Some(addr) = line.strip_prefix("serving on ") {
                break addr.to_string();
            }
        };
        // Keep draining stdout in the background so the closing summary
        // cannot block the child on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr.as_str()).expect("client connects")
    }

    /// Sends `shutdown` and waits for a clean exit.
    fn shutdown(mut self) {
        let mut client = self.client();
        assert_eq!(
            client.call(&Request::Shutdown).expect("shutdown answered"),
            Response::Done
        );
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited with {status}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Belt and braces for assertion failures mid-test: never leave
        // a server behind.
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn score(client: &mut Client, golden: &str, suspect: &str) -> Response {
    client
        .call(&Request::Score {
            golden: golden.to_string(),
            suspect: suspect.to_string(),
            model: None,
            request: None,
        })
        .expect("score answered")
}

#[test]
fn served_scores_are_bit_identical_to_offline_at_any_worker_count() {
    let dir = scratch("identity");
    let golden = characterize(&dir);

    // The offline truth: one report per suspect via `htd score`.
    let mut offline = Vec::new();
    for suspect in ["ht1", "ht-seq"] {
        let path = dir.join(format!("offline-{suspect}.htd"));
        htd(&[
            "score",
            "--golden",
            &golden,
            "--trojans",
            suspect,
            "--report",
            &path.display().to_string(),
        ]);
        offline.push((
            suspect,
            std::fs::read_to_string(&path).expect("offline report"),
        ));
    }

    for workers in ["1", "2", "8"] {
        // --result-cache 0: every request must really score, so worker
        // invariance is exercised, not memoized away.
        let server = Server::spawn(&["--workers", workers, "--result-cache", "0"]);
        let mut client = server.client();
        // Twice per suspect: rescoring the same request must also agree.
        for _round in 0..2 {
            for (suspect, expected) in &offline {
                let response = score(&mut client, &golden, suspect);
                let Response::Score {
                    report,
                    plan,
                    suspect: echoed,
                    request,
                } = response
                else {
                    panic!("expected a score at {workers} workers, got {response:?}");
                };
                assert_eq!(&echoed, suspect);
                assert_eq!(request, None, "id-less requests get id-less responses");
                assert!(plan.starts_with("fnv1a64:"), "bad plan digest {plan}");
                assert_eq!(
                    &report, expected,
                    "served {suspect} differs from offline at {workers} workers"
                );
            }
        }
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A reference-free golden serves exactly like it scores offline: the
/// server sniffs the artifact kind, runs the reference-free session,
/// and the embedded report is byte-identical to `htd score --report` —
/// at 1, 2 and 8 workers.
#[test]
fn served_reference_free_scores_are_bit_identical_to_offline() {
    let dir = scratch("reffree");
    let golden = dir.join("reffree.htd").display().to_string();
    htd(&[
        "characterize",
        "--out",
        &golden,
        "--mode",
        "reference-free",
        "--dies",
        "4",
        "--pairs",
        "2",
        "--reps",
        "2",
        "--seed",
        "42",
        "--channels",
        "em,delay",
    ]);

    let mut offline = Vec::new();
    for suspect in ["ht1", "ht2"] {
        let path = dir.join(format!("offline-{suspect}.htd"));
        htd(&[
            "score",
            "--golden",
            &golden,
            "--trojans",
            suspect,
            "--report",
            &path.display().to_string(),
        ]);
        offline.push((
            suspect,
            std::fs::read_to_string(&path).expect("offline report"),
        ));
    }

    for workers in ["1", "2", "8"] {
        let server = Server::spawn(&["--workers", workers, "--result-cache", "0"]);
        let mut client = server.client();
        for _round in 0..2 {
            for (suspect, expected) in &offline {
                let response = score(&mut client, &golden, suspect);
                let Response::Score { report, .. } = response else {
                    panic!("expected a score at {workers} workers, got {response:?}");
                };
                assert_eq!(
                    &report, expected,
                    "served reference-free {suspect} differs from offline at {workers} workers"
                );
            }
        }
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Learned-mode serving: a request carrying a `model` scores through
/// the classifier byte-identically to offline `htd score --model`, a
/// malformed or missing model file degrades exactly those responses
/// into `error` (never the connection), and model-less requests on the
/// same golden are unaffected.
#[test]
fn served_model_scores_match_offline_and_bad_models_degrade_gracefully() {
    let dir = scratch("model");
    let golden = characterize(&dir);
    let model = dir.join("model.htd").display().to_string();
    htd(&[
        "train",
        "--out",
        &model,
        "--sizes",
        "8",
        "--kinds",
        "comb",
        "--dies",
        "4",
        "--iterations",
        "50",
    ]);

    let offline_learned = dir.join("offline-learned.htd");
    htd(&[
        "score",
        "--golden",
        &golden,
        "--model",
        &model,
        "--trojans",
        "ht1",
        "--report",
        &offline_learned.display().to_string(),
    ]);
    let offline_learned = std::fs::read_to_string(&offline_learned).expect("offline report");
    let offline_plain = dir.join("offline-plain.htd");
    htd(&[
        "score",
        "--golden",
        &golden,
        "--trojans",
        "ht1",
        "--report",
        &offline_plain.display().to_string(),
    ]);
    let offline_plain = std::fs::read_to_string(&offline_plain).expect("offline report");

    // A well-framed store file that is *not* a classifier.
    let not_a_model = dir.join("not-a-model.htd").display().to_string();
    std::fs::copy(&golden, &not_a_model).expect("copy golden");

    let server = Server::spawn(&[]);
    let mut client = server.client();
    let score_with = |client: &mut Client, model: Option<String>| {
        client
            .call(&Request::Score {
                golden: golden.clone(),
                suspect: "ht1".to_string(),
                model,
                request: None,
            })
            .expect("score answered")
    };

    // Interleaved model/no-model rounds: the result cache must never
    // serve a learned report for a plain request or vice versa.
    for _round in 0..2 {
        let response = score_with(&mut client, Some(model.clone()));
        let Response::Score { report, .. } = response else {
            panic!("expected a learned score, got {response:?}");
        };
        assert_eq!(report, offline_learned, "served learned report differs");

        let response = score_with(&mut client, None);
        let Response::Score { report, .. } = response else {
            panic!("expected a plain score, got {response:?}");
        };
        assert_eq!(report, offline_plain, "served plain report differs");
    }

    // A nonexistent model path degrades the response, not the server.
    let response = score_with(
        &mut client,
        Some(dir.join("missing.htd").display().to_string()),
    );
    assert!(matches!(&response, Response::Error { .. }), "{response:?}");

    // A malformed classifier upload (valid store file, wrong kind) is
    // answered with `error` on a live connection — never a dropped
    // socket.
    let response = score_with(&mut client, Some(not_a_model));
    assert!(matches!(&response, Response::Error { .. }), "{response:?}");
    assert_eq!(client.call(&Request::Ping).expect("ping"), Response::Done);

    // And the connection still scores normally afterwards.
    let response = score_with(&mut client, Some(model));
    assert!(matches!(response, Response::Score { .. }), "{response:?}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn same_plan_different_channels_never_share_a_cached_score() {
    let dir = scratch("collide");
    // Identical dies/pairs/reps/seed — identical campaign plan, hence
    // identical plan digest — but different channels, so the artifacts
    // are byte-distinct and score differently. A cache keyed by plan
    // digest alone would serve whichever loaded last for both paths.
    let mut goldens = Vec::new();
    for channels in ["em", "delay"] {
        let golden = dir
            .join(format!("golden-{channels}.htd"))
            .display()
            .to_string();
        htd(&[
            "characterize",
            "--out",
            &golden,
            "--dies",
            "3",
            "--pairs",
            "2",
            "--reps",
            "2",
            "--seed",
            "42",
            "--channels",
            channels,
        ]);
        let offline = dir.join(format!("offline-{channels}.htd"));
        htd(&[
            "score",
            "--golden",
            &golden,
            "--trojans",
            "ht1",
            "--report",
            &offline.display().to_string(),
        ]);
        goldens.push((
            golden,
            std::fs::read_to_string(&offline).expect("offline report"),
        ));
    }
    assert_ne!(
        goldens[0].1, goldens[1].1,
        "the two channels must produce different reports for the test to bite"
    );

    let server = Server::spawn(&[]);
    let mut client = server.client();
    // Interleave, twice: the second round is served from the caches
    // both goldens now occupy, and each path must still get its own
    // report — byte-identical to its own offline run.
    for _round in 0..2 {
        for (golden, expected) in &goldens {
            let response = score(&mut client, golden, "ht1");
            let Response::Score { report, .. } = response else {
                panic!("expected a score for {golden}, got {response:?}");
            };
            assert_eq!(
                &report, expected,
                "served report for {golden} differs from its own offline run"
            );
        }
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_fatal_manifest_error_stops_the_server_instead_of_stranding_clients() {
    let dir = scratch("fatal");
    let golden = characterize(&dir);
    // The manifest path's parent directory does not exist, and
    // --metrics-every 1 makes the very first scored batch try (and
    // fail) to write it: the scheduler exits with the error.
    let manifest = dir.join("missing-dir").join("manifest.json");
    let server = Server::spawn(&[
        "--metrics",
        &manifest.display().to_string(),
        "--metrics-every",
        "1",
    ]);
    let mut client = server.client();
    // The batch answers before the manifest write, so this request is
    // still served.
    let response = score(&mut client, &golden, "ht1");
    assert!(matches!(response, Response::Score { .. }), "{response:?}");

    // The scheduler's exit must unblock the accept loop and end the
    // process promptly — no shutdown request, no lingering clients.
    let mut server = server;
    let status = 'wait: {
        for _ in 0..100 {
            if let Some(status) = server.child.try_wait().expect("child pollable") {
                break 'wait status;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        panic!("server still running 10s after the fatal manifest error");
    };
    assert_eq!(
        status.code(),
        Some(2),
        "a fatal serve error must exit with the CLI's error status"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_requests_get_error_responses_not_a_dead_server() {
    let server = Server::spawn(&[]);
    let mut client = server.client();
    for (case, raw) in [
        (
            "bad checksum",
            "htdserve 1 ping\nchecksum fnv1a64 0000000000000000\n".to_string(),
        ),
        ("unknown verb", frame_of("htdserve 1 explode\n")),
        (
            "bad score body",
            frame_of("htdserve 1 score\ngolden unquoted path\nsuspect ht2\n"),
        ),
        ("wrong magic", frame_of("htdstore 1 ping\n")),
        ("future version", frame_of("htdserve 99 ping\n")),
    ] {
        client.send_raw(raw.as_bytes()).expect("raw frame sent");
        let response = client.read_response().expect("server answered");
        assert!(
            matches!(&response, Response::Error { reason } if reason.contains("malformed")),
            "{case}: {response:?}"
        );
    }
    // An unknown suspect token fails at resolution, same connection.
    let response = score(&mut client, "/nonexistent.htd", "ht2");
    assert!(matches!(response, Response::Error { .. }), "{response:?}");
    // The server is still fully alive.
    assert_eq!(client.call(&Request::Ping).expect("ping"), Response::Done);
    server.shutdown();
}

/// Appends a valid checksum trailer to `body` so only the *content* is
/// malformed, never the framing (a bad trailer is its own test case).
fn frame_of(body: &str) -> String {
    format!(
        "{body}checksum fnv1a64 {:016x}\n",
        htd_store::fnv1a64(body.as_bytes())
    )
}

#[test]
fn overflowing_the_queue_sheds_busy_responses() {
    let dir = scratch("busy");
    let golden = characterize(&dir);
    let server = Server::spawn(&[
        "--queue-depth",
        "1",
        "--workers",
        "1",
        "--result-cache",
        "0",
    ]);

    // 12 clients race one queue slot while the scheduler is busy with a
    // cold (hundreds of ms) score: most must be shed with `busy`.
    let mut handles = Vec::new();
    for _ in 0..12 {
        let addr = server.addr.clone();
        let golden = golden.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr.as_str()).expect("client connects");
            score(&mut client, &golden, "ht1")
        }));
    }
    let (mut ok, mut busy) = (0, 0);
    for handle in handles {
        match handle.join().expect("client thread") {
            Response::Score { .. } => ok += 1,
            Response::Busy { depth } => {
                assert_eq!(depth, 1, "busy must echo the configured depth");
                busy += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(ok + busy, 12);
    assert!(ok >= 1, "at least one request must be served");
    assert!(busy >= 1, "a depth-1 queue under 12 clients must shed");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faulted_acquisitions_degrade_one_response_not_the_process() {
    let dir = scratch("faults");
    let golden = characterize(&dir);
    // Every acquisition attempt fails: under the strict policy each
    // score request exhausts its budget and errors.
    let faults = htd_faults::FaultPlan {
        seed: 7,
        acquire_rate: 1.0,
        rep_rate: 0.0,
        calibrate_rate: 0.0,
        store_rate: 0.0,
    };
    let fault_path = dir.join("faults.htd").display().to_string();
    std::fs::write(&fault_path, htd_store::to_text(&faults)).expect("fault plan written");

    let server = Server::spawn(&["--faults", &fault_path, "--result-cache", "0"]);
    let mut client = server.client();
    for _ in 0..2 {
        let response = score(&mut client, &golden, "ht1");
        assert!(
            matches!(&response, Response::Error { .. }),
            "fully faulted acquisition must degrade the response: {response:?}"
        );
    }
    // The process survived two faulted campaigns.
    assert_eq!(client.call(&Request::Ping).expect("ping"), Response::Done);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_writes_a_final_manifest_with_the_serve_counters() {
    let dir = scratch("manifest");
    let golden = characterize(&dir);
    let manifest_path = dir.join("manifest.json");
    let server = Server::spawn(&[
        "--metrics",
        &manifest_path.display().to_string(),
        // Larger than the request count: only the shutdown write fires.
        "--metrics-every",
        "1000",
    ]);
    let mut client = server.client();
    for suspect in ["ht2", "ht2", "ht-seq"] {
        let response = score(&mut client, &golden, suspect);
        assert!(matches!(response, Response::Score { .. }), "{response:?}");
    }
    server.shutdown();

    let manifest =
        RunManifest::parse(&std::fs::read_to_string(&manifest_path).expect("manifest written"))
            .expect("manifest parses strictly");
    assert_eq!(manifest.command, "serve");
    assert!(
        manifest.plan_digest.starts_with("fnv1a64:"),
        "manifest carries the last plan digest: {}",
        manifest.plan_digest
    );
    let get = |name: &str| {
        manifest
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing counter {name:?}"))
            .1
    };
    assert_eq!(get("serve.requests"), 3);
    assert_eq!(get("serve.responses.ok"), 3);
    assert_eq!(get("serve.batches"), 3, "sequential requests batch alone");
    // One golden, requested three times: one store miss, two hits.
    assert_eq!(get("store.cache.miss"), 1);
    assert_eq!(get("store.cache.hit"), 2);
    // ht2 repeats, so the result cache converts the second request.
    assert_eq!(get("serve.cache.result.miss"), 2);
    assert_eq!(get("serve.cache.result.hit"), 1);
    assert_eq!(
        get("serve.manifest.writes"),
        1,
        "only the final write fired"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole claim end to end: a served request's exported trace
/// carries the full span chain — accept, queue wait, batch, the scored
/// request, respond — every piece tagged with the id the client put on
/// the wire, and the response echoes that id back.
#[test]
fn traced_serve_tags_the_whole_request_chain_with_the_wire_id() {
    let dir = scratch("trace");
    let golden = characterize(&dir);
    let trace = dir.join("trace.json").display().to_string();
    let server = Server::spawn(&["--trace", &trace]);

    let mut client = server.client();
    let response = client
        .call(&Request::Score {
            golden: golden.clone(),
            suspect: "ht2".to_string(),
            model: None,
            request: Some("req-e2e-7".to_string()),
        })
        .expect("score answered");
    let Response::Score { request, .. } = response else {
        panic!("expected a score, got {response:?}");
    };
    assert_eq!(
        request.as_deref(),
        Some("req-e2e-7"),
        "the wire id must be echoed on the response"
    );
    // An id-less request on the same connection stays id-less on the
    // wire even though the server tags its own trace spans.
    let response = score(&mut client, &golden, "ht1");
    let Response::Score { request, .. } = response else {
        panic!("expected a score, got {response:?}");
    };
    assert_eq!(request, None);
    server.shutdown();

    let text = std::fs::read_to_string(&trace).expect("trace written at shutdown");
    let doc = htd_obs::Json::parse(&text).expect("trace is valid JSON");
    let htd_obs::Json::Obj(top) = &doc else {
        panic!("trace top level must be an object")
    };
    let htd_obs::Json::Arr(events) = &top
        .iter()
        .find(|(n, _)| n == "traceEvents")
        .expect("traceEvents present")
        .1
    else {
        panic!("traceEvents must be an array")
    };
    // Collect (event name, request tag) for every event carrying one.
    let mut tagged = Vec::new();
    let mut names = Vec::new();
    for event in events {
        let htd_obs::Json::Obj(event) = event else {
            panic!("every trace event is an object")
        };
        let get = |name: &str| {
            event
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        let name = get("name")
            .expect("named event")
            .as_str("name")
            .unwrap()
            .to_string();
        names.push(name.clone());
        if let Some(htd_obs::Json::Obj(args)) = get("args") {
            if let Some((_, htd_obs::Json::Str(id))) = args.iter().find(|(n, _)| n == "request") {
                tagged.push((name, id.clone()));
            }
        }
    }
    for stage in [
        "serve.accept",
        "serve.queue",
        "serve.request",
        "serve.respond",
    ] {
        assert!(
            tagged
                .iter()
                .any(|(name, id)| name == stage && id == "req-e2e-7"),
            "stage {stage} is not tagged with the wire id in {tagged:?}"
        );
        // The id-less request got a server-assigned srv-N tag: the
        // server's own trace is complete either way.
        assert!(
            tagged
                .iter()
                .any(|(name, id)| name == stage && id.starts_with("srv-")),
            "stage {stage} has no server-assigned tag in {tagged:?}"
        );
    }
    assert!(
        names.iter().any(|n| n == "serve.batch"),
        "the batch span is missing from {names:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `htd top --plain` polls the live `stats` verb: each block carries
/// uptime, queue depth and the full counter section, and consecutive
/// polls see each other (the manifest is live, not a boot snapshot).
#[test]
fn top_polls_live_stats_in_plain_mode() {
    let dir = scratch("top");
    let metrics = dir.join("metrics.json").display().to_string();
    // --metrics turns the recorder on; a bare server would answer stats
    // with an empty (but well-formed) counter section.
    let server = Server::spawn(&["--metrics", &metrics]);
    let out = Command::new(env!("CARGO_BIN_EXE_htd"))
        .args([
            "top",
            "--addr",
            &server.addr,
            "--iterations",
            "2",
            "--interval-ms",
            "10",
            "--plain",
        ])
        .output()
        .expect("htd top runs");
    assert!(
        out.status.success(),
        "htd top failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("uptime_ns "), "{stdout}");
    assert!(stdout.contains("queue 0"), "{stdout}");
    assert!(
        stdout.contains("serve.stats.requests 1") && stdout.contains("serve.stats.requests 2"),
        "two polls must observe each other in the live counters:\n{stdout}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The perf-regression gate: self-diff of a run manifest is clean (exit
/// 0), a single counter drift exits 4, and the bench-JSON flavour gates
/// the deterministic request mix the same way.
#[test]
fn bench_diff_exits_4_on_regression_and_0_on_self_diff() {
    let dir = scratch("bench-diff");
    let golden = characterize(&dir);
    let manifest = dir.join("manifest.json").display().to_string();
    htd(&[
        "score",
        "--golden",
        &golden,
        "--trojans",
        "ht2",
        "--metrics",
        &manifest,
    ]);

    let diff = |old: &str, new: &str| {
        Command::new(env!("CARGO_BIN_EXE_htd"))
            .args(["bench", "diff", old, new])
            .output()
            .expect("bench diff runs")
    };
    let out = diff(&manifest, &manifest);
    assert_eq!(out.status.code(), Some(0), "self-diff must be clean");

    // Inject a counter regression: the gate must name it and exit 4.
    let mut parsed =
        RunManifest::parse(&std::fs::read_to_string(&manifest).expect("manifest")).unwrap();
    let (name, value) = parsed.counters[0].clone();
    parsed.counters[0].1 = value + 1;
    let regressed = dir.join("regressed.json");
    std::fs::write(&regressed, parsed.to_pretty()).expect("regressed manifest");
    let out = diff(&manifest, &regressed.display().to_string());
    assert_eq!(out.status.code(), Some(4), "a counter drift must exit 4");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&name),
        "the regression report must name the counter {name:?}:\n{stdout}"
    );

    // Bench-JSON flavour: identical measurements are clean, a changed
    // outcome count (one request turned error) is a regression even
    // though every latency field differs wildly.
    let bench_old = dir.join("bench-old.json");
    let bench_new = dir.join("bench-new.json");
    std::fs::write(
        &bench_old,
        r#"{"bench": "serve", "requests": 300, "clients": 4, "shards": 1,
            "ok": 300, "errors": 0, "busy_retries": 12,
            "elapsed_ms": 901.2, "scores_per_sec": 333.0,
            "p50_ms": 8.1, "p99_ms": 31.9}"#,
    )
    .unwrap();
    std::fs::write(
        &bench_new,
        r#"{"bench": "serve", "requests": 300, "clients": 4, "shards": 1,
            "ok": 299, "errors": 1, "busy_retries": 77,
            "elapsed_ms": 450.0, "scores_per_sec": 660.0,
            "p50_ms": 4.0, "p99_ms": 16.0}"#,
    )
    .unwrap();
    let (old, new) = (
        bench_old.display().to_string(),
        bench_new.display().to_string(),
    );
    assert_eq!(diff(&old, &old).status.code(), Some(0));
    assert_eq!(diff(&old, &new).status.code(), Some(4));
    // Mixing the two file kinds is a usage error, not a regression.
    assert_eq!(diff(&manifest, &old).status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
