//! Cross-crate check: the structural AES netlist is functionally
//! equivalent to the behavioural reference, both clean and infected, on
//! any die.

use htd_aes::soft::Aes128;
use htd_core::prelude::*;
use htd_core::ProgrammedDevice;

fn pseudo_random_blocks(n: usize, seed: u64) -> Vec<([u8; 16], [u8; 16])> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|_| {
            let mut pt = [0u8; 16];
            let mut key = [0u8; 16];
            for i in 0..16 {
                pt[i] = (next() & 0xff) as u8;
                key[i] = (next() & 0xff) as u8;
            }
            (pt, key)
        })
        .collect()
}

#[test]
fn golden_design_matches_reference_cipher() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let die = lab.fabricate_die(42);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    for (pt, key) in pseudo_random_blocks(8, 0xA5A5) {
        assert_eq!(
            dev.encrypt(&pt, &key).unwrap(),
            Aes128::new(&key).encrypt_block(&pt)
        );
    }
}

#[test]
fn every_paper_trojan_preserves_function_while_dormant() {
    let lab = Lab::paper();
    let specs = [
        TrojanSpec::ht_comb(),
        TrojanSpec::ht_seq(),
        TrojanSpec::ht1(),
        TrojanSpec::ht2(),
        TrojanSpec::ht3(),
    ];
    let die = lab.fabricate_die(7);
    let vectors = pseudo_random_blocks(3, 0x1234);
    for spec in specs {
        let infected = Design::infected(&lab, &spec).unwrap();
        let dev = ProgrammedDevice::new(&lab, &infected, &die);
        for (pt, key) in &vectors {
            assert_eq!(
                dev.encrypt(pt, key).unwrap(),
                Aes128::new(key).encrypt_block(pt),
                "{} altered the dormant function",
                spec.name
            );
        }
    }
}

#[test]
fn process_variation_never_changes_function() {
    // Delays vary per die; logic values must not.
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let (pt, key) = pseudo_random_blocks(1, 9)[0];
    let want = Aes128::new(&key).encrypt_block(&pt);
    for seed in 0..5 {
        let die = lab.fabricate_die(seed);
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        assert_eq!(dev.encrypt(&pt, &key).unwrap(), want, "die {seed}");
    }
}
