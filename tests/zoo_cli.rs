//! End-to-end tests of `htd zoo`: the detection-rate heat map (stdout
//! table and CSV) is bit-identical at 1, 2 and 8 workers, the CSV of the
//! CI smoke sweep matches the committed fixture byte for byte, and the
//! manifest carries the worker-invariant `zoo.*` and `pass.*` counters.

use std::path::PathBuf;
use std::process::Command;

use htd_obs::RunManifest;

/// The tiny sweep the CI smoke pins: 2 sizes × 2 kinds on a 3-die
/// campaign (see `ci.sh` and `tests/fixtures/zoo_smoke.csv`).
const SMOKE_ARGS: [&str; 14] = [
    "zoo",
    "--sizes",
    "4,8",
    "--kinds",
    "comb,fsm",
    "--dies",
    "3",
    "--pairs",
    "2",
    "--reps",
    "2",
    "--seed",
    "42",
    "--channels",
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htd-zoo-{}-{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn htd_zoo(workers: usize, csv: &std::path::Path, metrics: &std::path::Path) -> String {
    let mut args: Vec<String> = SMOKE_ARGS.iter().map(ToString::to_string).collect();
    args.push("em,delay".into());
    args.extend([
        "--workers".into(),
        workers.to_string(),
        "--csv".into(),
        csv.display().to_string(),
        "--metrics".into(),
        metrics.display().to_string(),
    ]);
    let out = Command::new(env!("CARGO_BIN_EXE_htd"))
        .args(&args)
        .output()
        .expect("htd spawns");
    assert!(
        out.status.success(),
        "htd zoo failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    // Drop the `wrote <scratch path>` trailer lines — the scratch paths
    // embed the worker count, the heat map itself must not.
    stdout
        .lines()
        .filter(|l| !l.starts_with("wrote "))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn zoo_heat_map_is_worker_invariant_and_matches_the_fixture() {
    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let dir = scratch(&format!("w{workers}"));
        let csv_path = dir.join("zoo.csv");
        let metrics_path = dir.join("zoo.json");
        let stdout = htd_zoo(workers, &csv_path, &metrics_path);
        let csv = std::fs::read_to_string(&csv_path).expect("csv written");
        let manifest =
            RunManifest::parse(&std::fs::read_to_string(&metrics_path).expect("manifest written"))
                .expect("manifest parses strictly");
        assert_eq!(manifest.command, "zoo");
        // The stdout table differs from the CSV only in formatting, and
        // both carry every zoo point.
        for name in ["zoo-comb-4", "zoo-fsm-4", "zoo-comb-8", "zoo-fsm-8"] {
            assert!(stdout.contains(name), "stdout lacks {name}:\n{stdout}");
            assert!(csv.contains(name), "csv lacks {name}:\n{csv}");
        }
        runs.push((workers, stdout, csv, manifest));
        std::fs::remove_dir_all(&dir).ok();
    }

    let (_, stdout1, csv1, manifest1) = &runs[0];
    for (workers, stdout, csv, manifest) in &runs[1..] {
        assert_eq!(
            stdout1, stdout,
            "heat-map table differs at {workers} workers"
        );
        assert_eq!(csv1, csv, "heat-map CSV differs at {workers} workers");
        assert_eq!(
            manifest1.counters_text(),
            manifest.counters_text(),
            "counter section differs at {workers} workers"
        );
    }

    // The CI smoke diffs this CSV against the committed fixture.
    let pinned = std::fs::read_to_string(fixture_dir().join("zoo_smoke.csv"))
        .expect("missing tests/fixtures/zoo_smoke.csv");
    assert_eq!(
        csv1, &pinned,
        "zoo smoke CSV drifted from tests/fixtures/zoo_smoke.csv"
    );

    // Per-zoo-point and per-pass counters are present and exact: 4 grid
    // points (2 sizes × 2 kinds), lint gate run once per infected design.
    let get = |name: &str| {
        manifest1
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing counter {name:?}"))
            .1
    };
    assert_eq!(get("zoo.points"), 4);
    assert_eq!(get("zoo.kind.comb"), 2);
    assert_eq!(get("zoo.kind.fsm"), 2);
    for pass in ["check_unconnected", "check_comb_loops", "check_fanout"] {
        assert_eq!(get(&format!("pass.{pass}.runs")), 4, "pass {pass} runs");
        assert_eq!(get(&format!("pass.{pass}.lints")), 0, "pass {pass} lints");
    }
}

#[test]
fn zoo_rejects_bad_grids() {
    for args in [
        vec!["zoo", "--sizes", "0"],
        vec!["zoo", "--sizes", "128", "--kinds", "ctr"],
        vec!["zoo", "--kinds", "nope"],
        vec!["zoo", "--placement", "everywhere"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_htd"))
            .args(&args)
            .output()
            .expect("htd spawns");
        assert!(!out.status.success(), "htd {args:?} unexpectedly succeeded");
    }
}
