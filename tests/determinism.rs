//! Reproducibility: every stochastic element is seed-driven, so complete
//! experiments replay bit-for-bit.

use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::em_detect::{fn_rate_experiment, SideChannel};
use htd_core::prelude::*;
use htd_core::ProgrammedDevice;

#[test]
fn delay_evidence_replays_exactly() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let die = lab.fabricate_die(0);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let dut = ProgrammedDevice::new(&lab, &infected, &die);
    let run = || {
        let campaign = DelayCampaign::random(4, 5, 0xDEAD);
        let det = DelayDetector::new(characterize_golden(&gdev, campaign).unwrap());
        det.examine(&dut, 11).unwrap().diff_ps
    };
    assert_eq!(run(), run());
}

#[test]
fn fn_rate_experiment_replays_exactly() {
    let lab = Lab::paper();
    let pt = [1u8; 16];
    let key = [2u8; 16];
    let run = || {
        fn_rate_experiment(
            &lab,
            &[TrojanSpec::ht2()],
            SideChannel::Em,
            4,
            &pt,
            &key,
            77,
        )
        .unwrap()
        .rows[0]
            .mu
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_noise() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let a = dev.acquire_em_trace(&[3u8; 16], &[4u8; 16], 1).unwrap();
    let b = dev.acquire_em_trace(&[3u8; 16], &[4u8; 16], 2).unwrap();
    assert_ne!(a, b);
}

#[test]
fn dies_are_deterministic_functions_of_their_seed() {
    let lab = Lab::paper();
    let a = lab.fabricate_die(123);
    let b = lab.fabricate_die(123);
    let c = lab.fabricate_die(124);
    assert_eq!(a.global_delay_factor(), b.global_delay_factor());
    assert_ne!(a.global_delay_factor(), c.global_delay_factor());
}
