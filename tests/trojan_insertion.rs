//! Layout-level insertion invariants across the whole suite (paper
//! Section II): placement preservation, resource accounting against the
//! paper's reported numbers, and dormancy.

use htd_core::prelude::*;
use htd_netlist::CellId;

#[test]
fn aes_utilization_matches_the_paper() {
    // "AES implementation covers 38.26% of the FPGA slices".
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let util = golden.placement().utilization();
    assert!(
        (0.34..0.43).contains(&util),
        "AES utilisation {util} far from the paper's 38.26 %"
    );
}

#[test]
fn trojan_sizes_match_the_papers_percentages() {
    // HT1/2/3 occupy ~0.5 / 1.0 / 1.7 % of the AES slices.
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let aes_slices = golden.used_slices();
    let expected = [0.005, 0.010, 0.017];
    for (spec, want) in TrojanSpec::size_sweep().into_iter().zip(expected) {
        let infected = Design::infected(&lab, &spec).unwrap();
        let frac = infected.trojan().unwrap().fraction_of_design(aes_slices);
        assert!(
            (frac - want).abs() < want * 0.5,
            "{}: {frac:.4} vs paper {want}",
            spec.name
        );
    }
}

#[test]
fn combinational_trojan_is_under_a_percent_of_the_device() {
    // "This HT uses 0.19% of slices in the FPGA".
    let lab = Lab::paper();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let frac = infected
        .trojan()
        .unwrap()
        .fraction_of_device(infected.placement());
    assert!(frac < 0.01, "HT-comb occupies {frac} of the device");
    assert!(frac > 0.0005);
}

#[test]
fn insertion_preserves_original_sites_and_netlist_prefix() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht3()).unwrap();
    // Every golden cell exists unchanged in the infected design, at the
    // same site.
    let g_nl = golden.aes().netlist();
    let i_nl = infected.aes().netlist();
    assert!(i_nl.cell_count() > g_nl.cell_count());
    for (id, g_cell) in g_nl.cells() {
        let i_cell = i_nl.cell(id);
        assert_eq!(g_cell.kind(), i_cell.kind(), "cell {id} changed kind");
        assert_eq!(
            golden.placement().site_of(id),
            infected.placement().site_of(id),
            "cell {id} moved"
        );
    }
}

#[test]
fn trojan_cells_sit_in_previously_free_sites() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht1()).unwrap();
    let trojan = infected.trojan().unwrap();
    for &cell in &trojan.cells {
        let site = infected
            .placement()
            .site_of(cell)
            .expect("trojan cell placed");
        // That site must have been free in the golden placement: no golden
        // cell occupies it.
        for (gid, _) in golden.aes().netlist().cells() {
            assert_ne!(
                golden.placement().site_of(gid),
                Some(site),
                "trojan cell {cell} stole an occupied site"
            );
        }
    }
}

#[test]
fn trojan_taps_are_subbytes_inputs() {
    // Section II-B: the combinational trigger scans SubBytes inputs.
    let lab = Lab::paper();
    let infected = Design::infected(&lab, &TrojanSpec::ht2()).unwrap();
    let trojan = infected.trojan().unwrap();
    let subbytes = infected.aes().subbytes_inputs();
    assert_eq!(trojan.tapped_nets.len(), 64);
    for tap in &trojan.tapped_nets {
        assert!(subbytes.contains(tap));
    }
    // Tapped nets gained the trigger's LUTs as sinks.
    let nl = infected.aes().netlist();
    let trojan_cells: std::collections::HashSet<CellId> = trojan.cells.iter().copied().collect();
    for &tap in &trojan.tapped_nets {
        assert!(
            nl.net(tap).sinks().iter().any(|s| trojan_cells.contains(s)),
            "tap not actually connected"
        );
    }
}
