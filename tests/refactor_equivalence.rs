//! Pins the exact outputs of the three campaign entry points to the
//! values they produced before the channel/CampaignPlan refactor, at
//! several worker counts. Any change to seed derivation, stage order or
//! floating-point reduction order shows up here as a bit-level diff.

use htd_core::delay_detect::{characterize_golden, DelayCampaign, DelayDetector};
use htd_core::em_detect::{fn_rate_experiment_with_metric, SideChannel, TraceMetric};
use htd_core::fusion::fusion_experiment_with;
use htd_core::prelude::*;

/// Engines the pinned campaigns replay under; every one must reproduce
/// the single historical result.
fn engines() -> Vec<Engine> {
    vec![Engine::serial(), Engine::with_workers(4)]
}

#[test]
fn fusion_experiment_reproduces_prerefactor_values() {
    let lab = Lab::paper();
    for engine in engines() {
        let report = fusion_experiment_with(
            &engine,
            &lab,
            &[TrojanSpec::ht2()],
            6,
            2,
            &[0x11u8; 16],
            &[0x22u8; 16],
            42,
        )
        .unwrap();
        assert_eq!(report.n_dies, 6);
        let row = &report.rows[0];

        assert_eq!(row.em.mu, 300261.7222222223);
        assert_eq!(row.em.sigma, 148497.90924351552);
        assert_eq!(row.em.analytic_fn_rate, 0.15600906116797436);
        assert_eq!(row.em.empirical_fn_rate, 0.16666666666666666);

        assert_eq!(row.delay.mu, 135.20218460648155);
        assert_eq!(row.delay.sigma, 156.28431086104035);
        assert_eq!(row.delay.analytic_fn_rate, 0.3326701310996167);
        assert_eq!(row.delay.empirical_fn_rate, 0.3333333333333333);

        assert_eq!(row.fused.mu, 3.4569044806980473);
        assert_eq!(row.fused.sigma, 2.516457429120397);
        assert_eq!(row.fused.analytic_fn_rate, 0.2460856918380222);
        assert_eq!(row.fused.empirical_fn_rate, 0.3333333333333333);
    }
}

#[test]
fn fn_rate_experiment_reproduces_prerefactor_values() {
    let lab = Lab::paper();
    for engine in engines() {
        for (chain, mu, sigma, analytic) in [
            (
                SideChannel::Em,
                282981.625,
                131912.10057707463,
                0.14172209095675442,
            ),
            (
                SideChannel::Power,
                720301.625,
                269918.1397089353,
                0.09105336217738802,
            ),
        ] {
            let report = fn_rate_experiment_with_metric(
                &engine,
                &lab,
                &[TrojanSpec::ht2()],
                chain,
                TraceMetric::SumOfLocalMaxima,
                4,
                &[1u8; 16],
                &[2u8; 16],
                77,
            )
            .unwrap();
            let row = &report.rows[0];
            assert_eq!(row.size_fraction, 0.00975609756097561, "{chain:?}");
            assert_eq!(row.mu, mu, "{chain:?}");
            assert_eq!(row.sigma, sigma, "{chain:?}");
            assert_eq!(row.analytic_fn_rate, analytic, "{chain:?}");
            assert_eq!(row.empirical_fn_rate, 0.0, "{chain:?}");
            assert_eq!(row.empirical_fp_rate, 0.0, "{chain:?}");
        }
    }
}

#[test]
fn examine_pairs_reproduces_prerefactor_values() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let die = lab.fabricate_die(0);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let dut = ProgrammedDevice::new(&lab, &infected, &die);
    let campaign = DelayCampaign::random(4, 3, 0xC0DE);
    let detector = DelayDetector::new(characterize_golden(&gdev, campaign).unwrap());
    for engine in engines() {
        let evidence = detector.examine_pairs_with(&engine, &dut, 9, 3).unwrap();
        assert_eq!(evidence.max_diff_ps, 513.3333333333335);
        assert_eq!(evidence.flagged_bits, 125);
        let sum: f64 = evidence.diff_ps.iter().flatten().sum();
        assert_eq!(sum, 54448.333333333285);
    }
}
