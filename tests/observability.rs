//! Observability end-to-end tests: the counter section of a
//! [`RunManifest`] is bit-identical at any worker count (counts are
//! deterministic; durations are observational and never compared), the
//! checked-in manifest fixture pins the schema and counter taxonomy the
//! `htd` CLI produces, and enabling `--metrics` never perturbs the
//! checksummed artifacts themselves.

use std::path::{Path, PathBuf};
use std::process::Command;

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Channel, ChannelSpec};
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{characterize_campaign_faulted, score_campaign_faulted};
use htd_core::resilience::RetryPolicy;
use htd_core::{Engine, Lab};
use htd_faults::FaultPlan;
use htd_obs::{Json, Obs, RunManifest, MANIFEST_VERSION};
use htd_trojan::TrojanSpec;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// The campaign of the paper-headline CI smoke: `htd characterize
/// --dies 8 --pairs 2 --reps 2 --seed 2015 --channels em,delay`.
fn cli_characterize_args(out: &Path, workers: usize) -> Vec<String> {
    [
        "characterize",
        "--out",
        &out.display().to_string(),
        "--dies",
        "8",
        "--pairs",
        "2",
        "--reps",
        "2",
        "--seed",
        "2015",
        "--channels",
        "em,delay",
        "--workers",
        &workers.to_string(),
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

fn run_htd(args: &[String]) {
    let out = Command::new(env!("CARGO_BIN_EXE_htd"))
        .args(args)
        .output()
        .expect("htd spawns");
    assert!(
        out.status.success(),
        "htd {:?} failed:\n{}{}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

fn htd_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_htd"))
        .args(args)
        .output()
        .expect("htd spawns");
    assert!(
        out.status.success(),
        "htd {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// A fresh scratch directory per (test, worker-count) pair so parallel
/// tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htd-obs-{}-{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Library-level counter determinism: the same faulted campaign on 1, 2,
/// and 8 workers yields bit-identical counter snapshots, and the report
/// itself is unchanged by the recording observer.
#[test]
fn library_counters_are_worker_invariant() {
    let plan = CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 42);
    let specs = [
        ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
        ChannelSpec::Delay,
    ];
    let faults = FaultPlan {
        seed: 7,
        acquire_rate: 0.2,
        rep_rate: 0.1,
        calibrate_rate: 0.0,
        store_rate: 0.0,
    };
    let policy = RetryPolicy::degraded(2);
    let campaign = |engine: &Engine| {
        let lab = Lab::paper();
        let channels: Vec<Box<dyn Channel>> = specs.iter().map(ChannelSpec::build).collect();
        let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
        let charac = characterize_campaign_faulted(engine, &lab, &plan, &refs, &faults, &policy)
            .expect("characterize completes");
        let scored = score_campaign_faulted(
            engine,
            &lab,
            &charac,
            &[TrojanSpec::ht2()],
            &refs,
            &faults,
            &policy,
        )
        .expect("score completes");
        htd_store::to_text(&scored.report)
    };

    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let engine = Engine::with_workers(workers).with_obs(Obs::recording());
        let report = campaign(&engine);
        let snapshot = engine.obs().snapshot().expect("recording obs snapshots");
        runs.push((workers, report, snapshot.counters));
    }
    let (_, report1, counters1) = &runs[0];
    for (workers, report, counters) in &runs[1..] {
        assert_eq!(counters1, counters, "counters differ at {workers} workers");
        assert_eq!(report1, report, "report differs at {workers} workers");
    }

    // The run is non-trivial: fan/task accounting, spans, cache traffic
    // and retry bookkeeping all registered.
    let get = |name: &str| {
        counters1
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing counter {name:?} in {counters1:?}"))
            .1
    };
    assert!(get("engine.fans") > 0);
    assert!(get("engine.tasks") > get("engine.fans"));
    assert_eq!(get("span.characterize"), 1);
    assert_eq!(get("span.score"), 1);
    assert!(get("cache.settle.miss") > 0);
    // Event-binning accounting: every activity miss feeds the binning
    // kernel exactly once per (pair, chain), so the counters are
    // worker-invariant (checked above) and non-trivial; nothing in this
    // campaign's activity lies outside the acquisition window.
    assert!(get("acquire.events.binned") > 0);
    assert_eq!(get("acquire.events.dropped"), 0);
    // The lint gate on the single scored trojan design ran each check
    // pass exactly once, found nothing, and removed nothing — and those
    // counters are worker-invariant because the gate runs on the calling
    // thread (checked by the cross-run equality above).
    for pass in ["check_unconnected", "check_comb_loops", "check_fanout"] {
        assert_eq!(get(&format!("pass.{pass}.runs")), 1, "pass {pass} runs");
        assert_eq!(get(&format!("pass.{pass}.lints")), 0, "pass {pass} lints");
        assert_eq!(get(&format!("pass.{pass}.cells_removed")), 0);
        assert_eq!(get(&format!("pass.{pass}.nets_removed")), 0);
    }
    assert!(
        get("retry.acquire") + get("faults.rep.fired") > 0,
        "the fault plan fired somewhere: {counters1:?}"
    );

    // A noop observer produces the identical report: observation is free
    // of semantic effect.
    assert_eq!(&campaign(&Engine::with_workers(2)), report1);
}

/// Reference-free mode is worker-invariant too: the same faulted
/// reference-free campaign at 1, 2, and 8 workers yields bit-identical
/// artifact text, report text, and counter snapshots — including the
/// mode's own `score.reffree.*` counters.
#[test]
fn reffree_counters_are_worker_invariant() {
    use htd_core::reffree::{characterize_reffree_faulted, score_reffree_campaign};
    use htd_store::ReferenceFreeArtifact;

    let plan = CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 42);
    let specs = [
        ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
        ChannelSpec::Delay,
    ];
    let faults = FaultPlan {
        seed: 7,
        acquire_rate: 0.2,
        rep_rate: 0.1,
        calibrate_rate: 0.0,
        store_rate: 0.0,
    };
    let policy = RetryPolicy::degraded(2);
    let campaign = |engine: &Engine| {
        let lab = Lab::paper();
        let channels: Vec<Box<dyn Channel>> = specs.iter().map(ChannelSpec::build).collect();
        let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
        let charac = characterize_reffree_faulted(engine, &lab, &plan, &refs, &faults, &policy)
            .expect("reference-free characterize completes");
        // Lockstep filter, exactly as the CLI stores it: one spec per
        // surviving state, in execution order.
        let surviving: Vec<ChannelSpec> = specs
            .iter()
            .filter(|s| charac.states.iter().any(|st| st.channel == s.name()))
            .cloned()
            .collect();
        let artifact = ReferenceFreeArtifact::new(surviving, charac)
            .expect("surviving states form a consistent artifact");
        let scored = score_reffree_campaign(
            engine,
            &lab,
            artifact.characterization(),
            &[TrojanSpec::ht2()],
            &refs,
            &faults,
            &policy,
            None,
        )
        .expect("reference-free score completes");
        (
            htd_store::to_text(&artifact),
            htd_store::to_text(&scored.report),
        )
    };

    let mut runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let engine = Engine::with_workers(workers).with_obs(Obs::recording());
        let (artifact, report) = campaign(&engine);
        let snapshot = engine.obs().snapshot().expect("recording obs snapshots");
        runs.push((workers, artifact, report, snapshot.counters));
    }
    let (_, artifact1, report1, counters1) = &runs[0];
    for (workers, artifact, report, counters) in &runs[1..] {
        assert_eq!(counters1, counters, "counters differ at {workers} workers");
        assert_eq!(artifact1, artifact, "artifact differs at {workers} workers");
        assert_eq!(report1, report, "report differs at {workers} workers");
    }

    let get = |name: &str| {
        counters1
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing counter {name:?} in {counters1:?}"))
            .1
    };
    assert_eq!(get("span.characterize"), 1);
    assert_eq!(get("span.score"), 1);
    assert!(get("score.reffree.selfscores") > 0, "LOO scores registered");
    assert_eq!(get("score.reffree.designs"), 1);
    assert_eq!(get("score.designs"), 1);
}

/// CLI-level learned-mode determinism: `htd train` writes byte-identical
/// classifier models (and bit-identical `train.*` counter sections) at
/// 1, 2, and 8 workers, and `htd score --model` reports are
/// byte-identical across worker counts.
#[test]
fn cli_train_and_learned_scores_are_worker_invariant() {
    let mut models = Vec::new();
    let mut manifests = Vec::new();
    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let dir = scratch(&format!("train-w{workers}"));
        let model = dir.join("model.htd");
        let metrics = dir.join("train.json");
        run_htd(&[
            "train".into(),
            "--out".into(),
            model.display().to_string(),
            "--sizes".into(),
            "8".into(),
            "--kinds".into(),
            "comb,ctr".into(),
            "--holdout".into(),
            "ctr".into(),
            "--dies".into(),
            "4".into(),
            "--seed".into(),
            "2015".into(),
            "--iterations".into(),
            "50".into(),
            "--workers".into(),
            workers.to_string(),
            "--metrics".into(),
            metrics.display().to_string(),
        ]);
        let manifest =
            RunManifest::parse(&std::fs::read_to_string(&metrics).expect("manifest written"))
                .expect("train manifest parses strictly");
        assert_eq!(manifest.command, "train");
        assert_eq!(manifest.workers as usize, workers);

        // A learned score against a fresh golden of the same channel
        // set, reported to a file for byte comparison.
        let golden = dir.join("golden.htd");
        run_htd(&cli_characterize_args(&golden, workers));
        let report = dir.join("report.htd");
        run_htd(&[
            "score".into(),
            "--golden".into(),
            golden.display().to_string(),
            "--model".into(),
            model.display().to_string(),
            "--trojans".into(),
            "ht1".into(),
            "--report".into(),
            report.display().to_string(),
            "--workers".into(),
            workers.to_string(),
        ]);

        models.push(std::fs::read(&model).expect("model readable"));
        reports.push(std::fs::read(&report).expect("report readable"));
        manifests.push((workers, manifest));
        std::fs::remove_dir_all(&dir).ok();
    }

    assert!(
        models.iter().all(|m| m == &models[0]),
        "trained model bytes differ across worker counts"
    );
    assert!(
        reports.iter().all(|r| r == &reports[0]),
        "learned report bytes differ across worker counts"
    );
    let (_, first) = &manifests[0];
    for (workers, manifest) in &manifests[1..] {
        assert_eq!(
            first.counters_text(),
            manifest.counters_text(),
            "train counter section differs at {workers} workers"
        );
    }
    let get = |name: &str| {
        first
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing counter {name:?}"))
            .1
    };
    // One comb trojan trains (ctr held out); 4 golden + 4 infected dies.
    assert_eq!(get("train.designs"), 1);
    assert_eq!(get("train.samples"), 8);
    assert_eq!(get("train.iterations"), 50);

    // The learned report really carries the classifier channel.
    let report = String::from_utf8(reports[0].clone()).expect("utf-8 report");
    assert!(
        report.contains("learned"),
        "no learned row in report:\n{report}"
    );
}

/// CLI-level determinism and artifact neutrality: `--metrics` manifests
/// from 1, 2, and 8 workers carry bit-identical counter sections, the
/// golden artifact is byte-identical across worker counts and with
/// metrics disabled, and `htd report --metrics --counters` prints
/// exactly the manifest's counter text.
#[test]
fn cli_manifest_counters_are_bit_identical_across_worker_counts() {
    let mut manifests = Vec::new();
    let mut goldens = Vec::new();
    for workers in [1usize, 2, 8] {
        let dir = scratch(&format!("w{workers}"));
        let golden = dir.join("golden.htd");
        let metrics = dir.join("manifest.json");
        run_htd(&cli_characterize_args(&golden, workers));
        run_htd(&[
            "score".into(),
            "--golden".into(),
            golden.display().to_string(),
            "--trojans".into(),
            "sweep".into(),
            "--workers".into(),
            workers.to_string(),
            "--metrics".into(),
            metrics.display().to_string(),
        ]);
        let text = std::fs::read_to_string(&metrics).expect("manifest written");
        let manifest = RunManifest::parse(&text).expect("manifest parses strictly");
        assert_eq!(manifest.workers as usize, workers);
        assert_eq!(manifest.command, "score");

        // `htd report --metrics FILE --counters` is the CI diff surface;
        // it must reproduce the manifest's counter text byte for byte.
        let printed = htd_stdout(&[
            "report",
            "--metrics",
            &metrics.display().to_string(),
            "--counters",
        ]);
        assert_eq!(printed, manifest.counters_text());

        manifests.push((workers, manifest));
        goldens.push(std::fs::read(&golden).expect("golden readable"));
        std::fs::remove_dir_all(&dir).ok();
    }

    let (_, first) = &manifests[0];
    for (workers, manifest) in &manifests[1..] {
        assert_eq!(
            first.counters_text(),
            manifest.counters_text(),
            "counter section differs at {workers} workers"
        );
        assert_eq!(first.plan_digest, manifest.plan_digest);
    }
    assert!(goldens.iter().all(|g| g == &goldens[0]));

    // Observation never perturbs the artifact: characterizing the same
    // campaign *with* --metrics yields the same golden bytes.
    let dir = scratch("with-metrics");
    let golden = dir.join("golden.htd");
    let mut args = cli_characterize_args(&golden, 2);
    args.push("--metrics".into());
    args.push(dir.join("charac.json").display().to_string());
    run_htd(&args);
    assert_eq!(
        std::fs::read(&golden).expect("golden readable"),
        goldens[0],
        "--metrics changed the golden artifact bytes"
    );
    let charac = RunManifest::parse(
        &std::fs::read_to_string(dir.join("charac.json")).expect("manifest written"),
    )
    .expect("characterize manifest parses");
    assert_eq!(charac.command, "characterize");
    assert!(!charac.health.is_empty(), "characterize reports health");
    std::fs::remove_dir_all(&dir).ok();

    // Schema/taxonomy stability: the committed fixture's counter section
    // matches a fresh run of the same campaign bit for bit.
    let pinned = std::fs::read_to_string(fixture_dir().join("run_manifest.json"))
        .expect("missing tests/fixtures/run_manifest.json; run the regenerate test below");
    let pinned = RunManifest::parse(&pinned).expect("fixture parses strictly");
    assert_eq!(
        pinned.counters_text(),
        first.counters_text(),
        "counter taxonomy drifted from tests/fixtures/run_manifest.json"
    );
    assert_eq!(pinned.plan_digest, first.plan_digest);
}

/// Serve-level counter determinism: the manifest a shutdown `htd serve`
/// writes carries a bit-identical counter section at 1, 2, and 8
/// workers for the same sequential request stream — the scheduler
/// thread owns every cache and counter, so worker count only changes
/// durations, never counts.
#[test]
fn serve_manifest_counters_are_worker_invariant() {
    use htd_serve::{Client, Request, Response};
    use std::process::Stdio;

    let dir = scratch("serve-invariance");
    let golden = dir.join("golden.htd");
    run_htd(&cli_characterize_args(&golden, 2));
    let golden = golden.display().to_string();

    let mut manifests = Vec::new();
    for workers in [1usize, 2, 8] {
        let metrics = dir.join(format!("serve-w{workers}.json"));
        let mut child = Command::new(env!("CARGO_BIN_EXE_htd"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers"])
            .arg(workers.to_string())
            .arg("--metrics")
            .arg(&metrics)
            .args(["--metrics-every", "1000"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("htd serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = std::io::BufRead::lines(std::io::BufReader::new(stdout));
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before binding")
                .expect("readable stdout");
            if let Some(addr) = line.strip_prefix("serving on ") {
                break addr.to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});

        let mut client = Client::connect(addr.as_str()).expect("client connects");
        // Sequential stream: one golden miss then hits, one result-cache
        // conversion on the repeated ht2.
        for suspect in ["ht2", "ht2", "ht-seq"] {
            let response = client
                .call(&Request::Score {
                    golden: golden.clone(),
                    suspect: suspect.into(),
                    model: None,
                    request: None,
                })
                .expect("score answered");
            assert!(
                matches!(response, Response::Score { .. }),
                "{workers} workers: {response:?}"
            );
        }
        assert_eq!(
            client.call(&Request::Shutdown).expect("shutdown"),
            Response::Done
        );
        assert!(child.wait().expect("serve exits").success());

        let manifest =
            RunManifest::parse(&std::fs::read_to_string(&metrics).expect("manifest written"))
                .expect("serve manifest parses strictly");
        assert_eq!(manifest.command, "serve");
        assert_eq!(manifest.workers as usize, workers);
        manifests.push((workers, manifest));
    }

    let (_, first) = &manifests[0];
    for (workers, manifest) in &manifests[1..] {
        assert_eq!(
            first.counters_text(),
            manifest.counters_text(),
            "serve counter section differs at {workers} workers"
        );
        assert_eq!(first.plan_digest, manifest.plan_digest);
    }
    let get = |name: &str| {
        first
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing counter {name:?}"))
            .1
    };
    assert_eq!(get("serve.requests"), 3);
    assert_eq!(get("serve.batches"), 3);
    assert_eq!(get("store.cache.miss"), 1);
    assert_eq!(get("store.cache.hit"), 2);
    assert_eq!(get("serve.cache.result.miss"), 2);
    assert_eq!(get("serve.cache.result.hit"), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed manifest fixture is a valid, current-version manifest
/// with the documented top-level shape. This parses strictly — any
/// added, removed, or renamed field in the writer shows up here (and in
/// CI) as a hard error.
#[test]
fn the_run_manifest_fixture_pins_the_schema() {
    let path = fixture_dir().join("run_manifest.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e})", path.display()));
    let manifest = RunManifest::parse(&text).expect("fixture parses strictly");
    assert_eq!(manifest.manifest_version, MANIFEST_VERSION);
    assert_eq!(manifest.tool.name, "htd");
    assert!(!manifest.tool.features.is_empty());
    assert!(manifest.plan_digest.starts_with("fnv1a64:"));
    assert!(!manifest.counters.is_empty());
    // Counter keys are sorted and unique — the property the CI diff
    // relies on.
    let keys: Vec<&str> = manifest.counters.iter().map(|(k, _)| k.as_str()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted);
    // Durations never leak into the deterministic section.
    assert!(!manifest.counters_text().contains("_ns"));
}

/// `htd version --json` is machine-readable and carries the fields the
/// manifest's tool section promises.
#[test]
fn version_json_is_machine_readable() {
    let text = htd_stdout(&["version", "--json"]);
    let json = Json::parse(&text).expect("version emits valid JSON");
    let obj = json.as_obj("version").expect("top-level object");
    let field = |name: &str| {
        obj.iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing field {name:?}"))
            .1
            .clone()
    };
    assert_eq!(field("name").as_str("name").unwrap(), "htd");
    assert_eq!(
        field("version").as_str("version").unwrap(),
        env!("CARGO_PKG_VERSION")
    );
    assert!(field("format_version").as_u64("format_version").unwrap() >= 1);
    let features = field("features");
    let features = features.as_arr("features").unwrap();
    assert!(features
        .iter()
        .any(|f| f.as_str("feature").unwrap() == "metrics"));
}

/// Rewrites `tests/fixtures/run_manifest.json` from the current CLI.
/// Run only after a deliberate change to the counter taxonomy or the
/// manifest schema:
///
/// ```sh
/// cargo test -p htd-cli --test observability -- --ignored regenerate
/// ```
#[test]
#[ignore = "regenerates the checked-in run manifest fixture"]
fn regenerate_run_manifest() {
    let dir = scratch("regen");
    let golden = dir.join("golden.htd");
    let metrics = fixture_dir().join("run_manifest.json");
    run_htd(&cli_characterize_args(&golden, 2));
    run_htd(&[
        "score".into(),
        "--golden".into(),
        golden.display().to_string(),
        "--trojans".into(),
        "sweep".into(),
        "--workers".into(),
        "2".to_string(),
        "--metrics".into(),
        metrics.display().to_string(),
    ]);
    std::fs::remove_dir_all(&dir).ok();
    println!("wrote {}", metrics.display());
}

/// `--trace` is purely additive: the exported flamegraph JSON is a
/// well-formed span tree (parent links, counter deltas), while the
/// stored artifact and the deterministic counter section stay
/// byte-identical to an untraced run of the same campaign.
#[test]
fn trace_export_perturbs_neither_artifacts_nor_counters() {
    let dir = scratch("trace");
    let (plain, traced) = (dir.join("plain.htd"), dir.join("traced.htd"));
    let (plain_m, traced_m) = (dir.join("plain.json"), dir.join("traced.json"));
    let trace = dir.join("trace.json");

    let mut args = cli_characterize_args(&plain, 2);
    args.extend(["--metrics".into(), plain_m.display().to_string()]);
    run_htd(&args);
    let mut args = cli_characterize_args(&traced, 2);
    args.extend([
        "--metrics".into(),
        traced_m.display().to_string(),
        "--trace".into(),
        trace.display().to_string(),
    ]);
    run_htd(&args);

    let artifact = std::fs::read(&plain).expect("plain artifact");
    assert_eq!(
        artifact,
        std::fs::read(&traced).expect("traced artifact"),
        "--trace changed the stored artifact"
    );
    let counters = |path: &Path| {
        RunManifest::parse(&std::fs::read_to_string(path).expect("manifest"))
            .expect("manifest parses")
            .counters_text()
    };
    assert_eq!(
        counters(&plain_m),
        counters(&traced_m),
        "--trace changed the counter section"
    );

    // The export is a Chrome trace-event document whose spans form a
    // tree: one root `characterize` span, every parent link resolving
    // to another span in the document, and the root's counter deltas
    // carrying the per-span attribution.
    let doc = Json::parse(&std::fs::read_to_string(&trace).expect("trace written"))
        .expect("trace is valid JSON");
    let Json::Obj(top) = &doc else {
        panic!("trace top level must be an object")
    };
    let field = |fields: &[(String, Json)], name: &str| -> Option<Json> {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    };
    assert_eq!(field(top, "displayTimeUnit"), Some(Json::Str("ns".into())));
    let Some(Json::Arr(events)) = field(top, "traceEvents") else {
        panic!("traceEvents must be an array")
    };
    assert!(!events.is_empty(), "an empty trace explains nothing");
    let mut ids = Vec::new();
    let mut parents = Vec::new();
    let mut names = Vec::new();
    for event in &events {
        let Json::Obj(event) = event else {
            panic!("every trace event is an object")
        };
        let name = field(event, "name").expect("every event is named");
        names.push(name.as_str("name").unwrap().to_string());
        // Only complete (`ph: X`) span events carry the tree linkage;
        // async halves correlate by string id instead.
        let Some(Json::Obj(args)) = field(event, "args") else {
            continue;
        };
        if let Some(span) = field(&args, "span") {
            ids.push(span.as_str("span").unwrap().to_string());
        }
        if let Some(parent) = field(&args, "parent") {
            parents.push(parent.as_str("parent").unwrap().to_string());
        }
    }
    assert!(
        names.iter().any(|n| n == "characterize"),
        "no root span in {names:?}"
    );
    assert!(!parents.is_empty(), "no parent links: the tree is flat");
    for parent in &parents {
        assert!(
            ids.contains(parent),
            "parent {parent} resolves to no span in the document"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Rerunning the same campaign reproduces the same span ids: the trace
/// tree is addressable across runs (diffable, linkable from CI logs).
#[test]
fn trace_span_ids_are_deterministic_across_reruns() {
    let dir = scratch("trace-determinism");
    let mut ids = Vec::new();
    for round in 0..2 {
        let out = dir.join(format!("golden-{round}.htd"));
        let trace = dir.join(format!("trace-{round}.json"));
        let mut args = cli_characterize_args(&out, 1);
        args.extend(["--trace".into(), trace.display().to_string()]);
        run_htd(&args);
        let text = std::fs::read_to_string(&trace).expect("trace written");
        let mut spans: Vec<String> = text
            .lines()
            .filter_map(|l| l.trim().strip_prefix("\"span\": "))
            .map(|s| s.trim_end_matches(',').to_string())
            .collect();
        spans.sort();
        ids.push(spans);
    }
    assert_eq!(ids[0], ids[1], "span ids drifted between identical runs");
    assert!(!ids[0].is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// The malformed-manifest fixture pins the strict reader's failure
/// mode: unknown counter *names* are fine (the additive rule), but an
/// unknown top-level *field* is a schema error, loudly rejected.
#[test]
fn the_malformed_manifest_fixture_is_rejected() {
    let path = fixture_dir().join("run_manifest_malformed.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e})", path.display()));
    let error = RunManifest::parse(&text).expect_err("a malformed schema must not parse");
    assert!(
        error.to_string().contains("unknown key"),
        "the error must name the schema violation, got: {error}"
    );
}
