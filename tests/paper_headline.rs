//! The paper's headline result, as a regression test: detection
//! probability greater than 95 % (false-negative rate ≤ 5 %) for a trojan
//! of ≥ 1.7 % of the AES area, under inter-die process variations, with
//! the false-negative rate decreasing monotonically in trojan size.
//!
//! Run with a moderate Monte-Carlo population (32 dies) to keep test time
//! reasonable; the `table_fn_rates` bench reproduces the full table.

use htd_core::em_detect::{fn_rate_experiment, SideChannel};
use htd_core::prelude::*;

#[test]
fn fn_rate_decreases_with_size_and_ht3_clears_95_percent() {
    let lab = Lab::paper();
    let report = fn_rate_experiment(
        &lab,
        &TrojanSpec::size_sweep(),
        SideChannel::Em,
        32,
        &[0x42u8; 16],
        &[0x13u8; 16],
        2015, // the year of the paper, why not
    )
    .unwrap();
    assert_eq!(report.rows.len(), 3);

    let fn_rates: Vec<f64> = report.rows.iter().map(|r| r.analytic_fn_rate).collect();
    // Monotone decrease with size.
    assert!(
        fn_rates[0] > fn_rates[1] && fn_rates[1] > fn_rates[2],
        "FN rates not monotone: {fn_rates:?}"
    );
    // HT 1 (0.5 %) is genuinely hard under PV (paper: 26 %).
    assert!(
        fn_rates[0] > 0.10,
        "HT 1 unrealistically easy: {}",
        fn_rates[0]
    );
    // HT 3 (1.7 %) clears the paper's 95 % detection bar.
    assert!(
        report.rows[2].detection_probability() > 0.95,
        "HT 3 detection {}",
        report.rows[2].detection_probability()
    );
    // Sizes match Section V-A.
    let sizes: Vec<f64> = report.rows.iter().map(|r| r.size_fraction).collect();
    assert!((sizes[0] - 0.005).abs() < 0.002, "{sizes:?}");
    assert!((sizes[1] - 0.010).abs() < 0.003, "{sizes:?}");
    assert!((sizes[2] - 0.017).abs() < 0.005, "{sizes:?}");
}

#[test]
fn metric_separation_mu_is_positive_for_every_size() {
    let lab = Lab::paper();
    let report = fn_rate_experiment(
        &lab,
        &TrojanSpec::size_sweep(),
        SideChannel::Em,
        12,
        &[0x42u8; 16],
        &[0x13u8; 16],
        7,
    )
    .unwrap();
    for row in &report.rows {
        assert!(row.mu > 0.0, "{} has non-positive offset", row.name);
        assert!(row.sigma > 0.0);
        assert!(row.empirical_fp_rate <= 0.5);
    }
}
