//! End-to-end EM-based detection (paper Sections IV–V): same-die direct
//! comparison, inter-die golden modelling, and classification with the
//! sum-of-local-maxima metric.

use htd_core::em_detect::{characterize_em_golden, direct_compare, EmDetector, SideChannel};
use htd_core::prelude::*;
use htd_core::ProgrammedDevice;

const PT: [u8; 16] = [0x42u8; 16];
const KEY: [u8; 16] = [0x13u8; 16];

#[test]
fn same_die_direct_comparison_flags_the_trojan() {
    // The paper's Fig. 5: two genuine captures bound the setup noise; the
    // infected capture deviates well above it.
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let die = lab.fabricate_die(3);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let tdev = ProgrammedDevice::new(&lab, &infected, &die);
    let g1 = gdev.acquire_em_trace(&PT, &KEY, 100).unwrap();
    let g2 = gdev.acquire_em_trace(&PT, &KEY, 200).unwrap(); // re-installed setup
    let t = tdev.acquire_em_trace(&PT, &KEY, 300).unwrap();
    let cmp = direct_compare(&g1, &g2, &t);
    assert!(
        cmp.infected,
        "HT not visible: diff {} vs floor {}",
        cmp.max_abs_diff, cmp.noise_floor
    );
    // And a third genuine capture is NOT flagged.
    let g3 = gdev.acquire_em_trace(&PT, &KEY, 400).unwrap();
    let cmp_clean = direct_compare(&g1, &g2, &g3);
    assert!(
        !cmp_clean.infected,
        "clean capture flagged: diff {} vs floor {}",
        cmp_clean.max_abs_diff, cmp_clean.noise_floor
    );
}

#[test]
fn interdie_detector_classifies_large_trojan_reliably() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht3()).unwrap();
    let dies = lab.fabricate_batch(8); // the paper's batch size
    let model =
        characterize_em_golden(&lab, &golden, &dies, SideChannel::Em, &PT, &KEY, 500).unwrap();
    let det = EmDetector::with_false_positive_rate(model, 0.05).unwrap();
    // Fresh dies the model never saw.
    let mut detected = 0;
    let mut false_pos = 0;
    for seed in 100..108u64 {
        let die = lab.fabricate_die(seed);
        let t_inf = ProgrammedDevice::new(&lab, &infected, &die)
            .acquire_em_trace(&PT, &KEY, seed)
            .unwrap();
        if det.is_infected(&t_inf) {
            detected += 1;
        }
        let t_gold = ProgrammedDevice::new(&lab, &golden, &die)
            .acquire_em_trace(&PT, &KEY, seed + 50)
            .unwrap();
        if det.is_infected(&t_gold) {
            false_pos += 1;
        }
    }
    assert!(detected >= 7, "only {detected}/8 infected dies detected");
    assert!(false_pos <= 2, "{false_pos}/8 golden dies misclassified");
}

#[test]
fn metric_grows_with_trojan_size() {
    // Fig. 6's message: bigger trojans push the deviation statistic
    // further above the golden fluctuation band.
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let dies = lab.fabricate_batch(6);
    let model =
        characterize_em_golden(&lab, &golden, &dies, SideChannel::Em, &PT, &KEY, 900).unwrap();
    let det = EmDetector::with_false_positive_rate(model, 0.05).unwrap();
    let probe_die = lab.fabricate_die(77);
    let mut metrics = Vec::new();
    for spec in TrojanSpec::size_sweep() {
        let infected = Design::infected(&lab, &spec).unwrap();
        let t = ProgrammedDevice::new(&lab, &infected, &probe_die)
            .acquire_em_trace(&PT, &KEY, 901)
            .unwrap();
        metrics.push(det.metric(&t));
    }
    assert!(
        metrics[0] < metrics[1] && metrics[1] < metrics[2],
        "metrics not monotone in size: {metrics:?}"
    );
}

#[test]
fn tvla_ttest_flags_the_trojan_on_raw_traces() {
    // The TVLA alternative to the paper's averaged-trace comparison: two
    // populations of lightly averaged traces, pointwise Welch t-test.
    // Populations of 30 keep the t-distribution's tails close enough to
    // normal for the classical 4.5 threshold to control the false-positive
    // rate across ~2700 samples.
    let mut lab = Lab::paper();
    lab.acquisition.averages = 50; // raw-ish traces, real noise present
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let die = lab.fabricate_die(2);
    let gdev = ProgrammedDevice::new(&lab, &golden, &die);
    let tdev = ProgrammedDevice::new(&lab, &infected, &die);
    // Standard TVLA preprocessing: normalise each trace by its RMS so the
    // per-installation gain error (a fixed multiplicative effect) does not
    // masquerade as leakage.
    let normalize = |t: Trace| {
        let r = t.rms().max(1e-12);
        Trace::new(t.samples().iter().map(|s| s / r).collect(), t.dt_ps())
    };
    let g_pop: Vec<_> = (0..30)
        .map(|i| normalize(gdev.acquire_em_trace(&PT, &KEY, 10_000 + i).unwrap()))
        .collect();
    let t_pop: Vec<_> = (0..30)
        .map(|i| normalize(tdev.acquire_em_trace(&PT, &KEY, 20_000 + i).unwrap()))
        .collect();
    let cmp = htd_core::em_detect::ttest_compare(&g_pop, &t_pop).unwrap();
    assert!(cmp.infected, "max |t| = {}", cmp.max_t);
    assert!(cmp.leaking_samples > 0);

    // Control: two genuine populations do not leak.
    let g_pop2: Vec<_> = (0..30)
        .map(|i| normalize(gdev.acquire_em_trace(&PT, &KEY, 30_000 + i).unwrap()))
        .collect();
    let clean = htd_core::em_detect::ttest_compare(&g_pop, &g_pop2).unwrap();
    assert!(
        !clean.infected,
        "clean populations leaked: max |t| = {}",
        clean.max_t
    );
}
