//! Determinism guarantees of the parallel measurement engine: every
//! campaign result must be bit-identical for every worker count
//! (including 1), and the per-device simulation caches must be invisible
//! to the measured values.

use htd_core::delay_detect::{
    characterize_golden_with, measure_matrix_with, DelayCampaign, DelayDetector,
};
use htd_core::em_detect::{fn_rate_experiment_with_metric, SideChannel, TraceMetric};
use htd_core::prelude::*;

const PT: [u8; 16] = [0x42u8; 16];
const KEY: [u8; 16] = [0x0Fu8; 16];

#[test]
fn delay_evidence_is_bit_identical_across_worker_counts() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
    let die = lab.fabricate_die(0);
    let campaign = DelayCampaign::random(5, 3, 0xBEEF);

    let reference = {
        let gdev = ProgrammedDevice::new(&lab, &golden, &die);
        let dut = ProgrammedDevice::new(&lab, &infected, &die);
        let det = DelayDetector::new(
            characterize_golden_with(&Engine::serial(), &gdev, campaign.clone()).unwrap(),
        );
        det.examine_with(&Engine::serial(), &dut, 7).unwrap()
    };

    // Worker counts beyond the pair count and the machine's core count
    // are deliberate: oversubscription must not change a single bit.
    for workers in [2usize, 3, 8] {
        let engine = Engine::with_workers(workers);
        let gdev = ProgrammedDevice::new(&lab, &golden, &die);
        let dut = ProgrammedDevice::new(&lab, &infected, &die);
        let det =
            DelayDetector::new(characterize_golden_with(&engine, &gdev, campaign.clone()).unwrap());
        let evidence = det.examine_with(&engine, &dut, 7).unwrap();
        assert_eq!(
            evidence.diff_ps, reference.diff_ps,
            "diff_ps diverged at {workers} workers"
        );
        assert_eq!(evidence.max_diff_ps, reference.max_diff_ps);
        assert_eq!(evidence.flagged_bits, reference.flagged_bits);
        assert_eq!(evidence.infected, reference.infected);
    }
}

#[test]
fn fn_rate_experiment_is_bit_identical_across_worker_counts() {
    let lab = Lab::paper();
    let specs = [TrojanSpec::ht2()];
    let run = |engine: &Engine| {
        fn_rate_experiment_with_metric(
            engine,
            &lab,
            &specs,
            SideChannel::Em,
            TraceMetric::SumOfLocalMaxima,
            4,
            &PT,
            &KEY,
            99,
        )
        .unwrap()
    };
    let reference = run(&Engine::serial());
    for workers in [2usize, 5] {
        let report = run(&Engine::with_workers(workers));
        assert_eq!(report.n_dies, reference.n_dies);
        for (got, want) in report.rows.iter().zip(&reference.rows) {
            assert_eq!(got.mu, want.mu, "mu diverged at {workers} workers");
            assert_eq!(got.sigma, want.sigma);
            assert_eq!(got.analytic_fn_rate, want.analytic_fn_rate);
            assert_eq!(got.empirical_fn_rate, want.empirical_fn_rate);
            assert_eq!(got.empirical_fp_rate, want.empirical_fp_rate);
        }
    }
}

#[test]
fn settle_cache_reproduces_cold_simulation_exactly() {
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let die = lab.fabricate_die(1);
    let campaign = DelayCampaign::random(4, 2, 3);
    let params = htd_timing::GlitchParams::paper_sweep(9_000.0, 180.0, 12.0);

    // Cold device: the first measurement simulates every settle.
    let cold_dev = ProgrammedDevice::new(&lab, &golden, &die);
    let cold = measure_matrix_with(&Engine::serial(), &cold_dev, &campaign, &params, 5).unwrap();
    assert_eq!(cold_dev.cache_stats().settle_hits, 0);

    // Same device again: all settles served from cache, same matrix.
    let warm =
        measure_matrix_with(&Engine::with_workers(4), &cold_dev, &campaign, &params, 5).unwrap();
    assert_eq!(warm, cold);
    let stats = cold_dev.cache_stats();
    assert_eq!(stats.settle_entries, campaign.pairs.len());
    assert_eq!(stats.settle_hits, campaign.pairs.len() as u64);

    // A fresh device (cold cache) still produces the identical matrix.
    let fresh_dev = ProgrammedDevice::new(&lab, &golden, &die);
    let fresh =
        measure_matrix_with(&Engine::with_workers(3), &fresh_dev, &campaign, &params, 5).unwrap();
    assert_eq!(fresh, cold);
}

#[test]
fn never_faulted_bits_are_distinct_from_last_step_onsets() {
    // A sweep whose floor is far above every real path: nothing faults,
    // and every mean onset carries the one-past-the-end sentinel rather
    // than the clamped last step.
    let lab = Lab::paper();
    let golden = Design::golden(&lab).unwrap();
    let die = lab.fabricate_die(0);
    let dev = ProgrammedDevice::new(&lab, &golden, &die);
    let campaign = DelayCampaign::random(2, 2, 11);
    let wide = htd_timing::GlitchParams {
        start_period_ps: 1.0e9,
        step_ps: 35.0,
        steps: 51,
        setup_ps: 180.0,
        noise_ps: 0.0,
    };
    let matrix = measure_matrix_with(&Engine::serial(), &dev, &campaign, &wide, 0).unwrap();
    let sentinel = wide.never_onset_steps();
    assert_eq!(sentinel, 51.0);
    for row in &matrix.mean_onset_steps {
        for &v in row {
            assert_eq!(v, sentinel, "never-faulted bit must carry the sentinel");
            assert!(v > (wide.steps - 1) as f64);
        }
    }
}
